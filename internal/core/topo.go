package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/fault"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
	"leosim/internal/topo"
)

// TopoOptions configures the topology-lab sweep. The zero value sweeps every
// built-in motif under both modes with the defaults noted per field.
type TopoOptions struct {
	// Motifs lists the motifs to sweep (nil = every built-in motif).
	Motifs []topo.ID
	// K is the multipath degree of the throughput evaluation (0 = 3, the
	// middle of Fig 4's range).
	K int
	// FaultScenario and FaultFraction define the resilience probe
	// (defaults: sat outage, 10% — correlated enough to separate sparse
	// from dense motifs without blacking the network out).
	FaultScenario fault.Scenario
	FaultFraction float64
	// FaultSeed drives outage sampling (0 = the sim's scale seed).
	FaultSeed int64
	// ChurnStep and ChurnWindow define the seconds-scale route-stability
	// probe (defaults 1s / 30s), walked with the incremental advancer.
	ChurnStep, ChurnWindow time.Duration
}

func (o *TopoOptions) setDefaults(s *Sim) {
	if len(o.Motifs) == 0 {
		o.Motifs = topo.IDs()
	}
	if o.K <= 0 {
		o.K = 3
	}
	if o.FaultScenario == "" {
		o.FaultScenario = fault.SatOutage
	}
	if o.FaultFraction == 0 {
		o.FaultFraction = 0.1
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = s.Scale.Seed
	}
	if o.ChurnStep <= 0 {
		o.ChurnStep = time.Second
	}
	if o.ChurnWindow <= 0 {
		o.ChurnWindow = 30 * time.Second
	}
}

// TopoCell is one motif × mode cell of the topology comparison.
type TopoCell struct {
	Motif topo.ID
	Mode  Mode
	// ISLCount and MeanISLKm describe the link set at the epoch (for
	// epoch-aware motifs the count can drift slightly across snapshots).
	ISLCount  int
	MeanISLKm float64
	// MedianRTTMs / P99RTTMs summarize the pooled per-pair RTTs across
	// every snapshot; DemandWeightedMedianRTTMs weighs each sample by its
	// pair's population product (the gravity demand the demand motif
	// optimizes for). UnreachableFrac is the unreachable share of
	// (pair, snapshot) samples.
	MedianRTTMs               float64
	P99RTTMs                  float64
	DemandWeightedMedianRTTMs float64
	UnreachableFrac           float64
	// ThroughputGbps is the max-min fair aggregate at the epoch snapshot.
	ThroughputGbps float64
	// FaultMedianRTTMs, FaultUnreachableFrac and ThroughputRetention
	// re-evaluate the epoch snapshot under the fault plan.
	FaultMedianRTTMs     float64
	FaultUnreachableFrac float64
	ThroughputRetention  float64
	// RouteChangesPerMin is the churn-window route-change rate;
	// FullRebuilds counts advancer fallbacks in that walk (expected 0 at
	// seconds-scale steps).
	RouteChangesPerMin float64
	FullRebuilds       int
}

// TopoResult is the topology-lab comparison: every swept motif × mode cell
// plus the sweep configuration needed to interpret it.
type TopoResult struct {
	Motifs        []topo.ID
	K             int
	FaultScenario fault.Scenario
	FaultFraction float64
	FaultSeed     int64
	ChurnStep     time.Duration
	ChurnWindow   time.Duration
	SnapshotsUsed int
	Cells         []TopoCell
}

// Cell returns the cell for (motif, mode), or nil.
func (r *TopoResult) Cell(id topo.ID, mode Mode) *TopoCell {
	for i := range r.Cells {
		if r.Cells[i].Motif == id && r.Cells[i].Mode == mode {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunTopo runs the topology-lab sweep: every motif under BP and Hybrid
// connectivity, compared on pooled latency (median/p99/demand-weighted),
// max-min fair throughput, fault resilience, and seconds-scale route churn.
//
// Per-motif evaluation shares the sim's ground segment, fleet, traffic
// matrix and capacities; only the constellation's ISL set differs, so every
// difference between cells is attributable to the motif. Epoch-aware motifs
// (nearest, demand) are recomputed before each snapshot — the per-snapshot
// re-optimization the paper's fixed +Grid cannot express — but hold their
// link set fixed across the churn window: re-pointing lasers is a
// snapshot-scale operation, not a seconds-scale one. BP cells do not depend
// on the motif (no ISLs); they are evaluated once and replicated so the
// table stays rectangular, and their equality across motifs is itself the
// BP-invariance control. Deterministic: the same sim and options always
// produce byte-identical results.
func RunTopo(ctx context.Context, s *Sim, opt TopoOptions) (res *TopoResult, err error) {
	defer safe.RecoverTo(&err)
	opt.setDefaults(s)
	times := s.SnapshotTimes()

	res = &TopoResult{
		Motifs:        opt.Motifs,
		K:             opt.K,
		FaultScenario: opt.FaultScenario,
		FaultFraction: opt.FaultFraction,
		FaultSeed:     opt.FaultSeed,
		ChurnStep:     opt.ChurnStep,
		ChurnWindow:   opt.ChurnWindow,
		SnapshotsUsed: len(times),
	}

	// Gravity weights for the demand-weighted latency view: a pair counts
	// by the population product of its endpoints, matching the corridor
	// model the demand motif places links for.
	weights := make([]float64, len(s.Pairs))
	for i, p := range s.Pairs {
		weights[i] = s.Cities[p.Src].Pop * s.Cities[p.Dst].Pop
	}

	prog := telemetry.NewProgress(Progress, "topo", len(opt.Motifs)+1)
	defer prog.Finish()

	// BP control: motif-independent, evaluated once on the sim's own
	// constellation (ISLs disabled), replicated into every motif row.
	bpCell, err := s.topoEvalMode(ctx, s.Const, BP, times, weights, opt)
	if err != nil {
		return nil, err
	}
	prog.Step(1)

	for _, id := range opt.Motifs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := topo.Build(id, topo.Config{Cities: s.Cities})
		if err != nil {
			return nil, err
		}
		// A per-motif constellation over the same shells keeps satellite
		// and terminal node indices aligned with the sim's, so the shared
		// traffic matrix and search plumbing apply unchanged.
		mc, err := constellation.New(s.Const.Shells, topo.Option(m))
		if err != nil {
			return nil, fmt.Errorf("core: building %s constellation: %w", id, err)
		}
		hyCell, err := s.topoEvalMotif(ctx, mc, m, times, weights, opt)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating motif %s: %w", id, err)
		}
		hyCell.Motif = id

		bp := bpCell
		bp.Motif = id
		res.Cells = append(res.Cells, bp, hyCell)
		prog.Step(1)
		progressf("topo: %-10s done (hybrid median %.1f ms, %d ISLs)\n",
			id, hyCell.MedianRTTMs, hyCell.ISLCount)
	}
	return res, nil
}

// topoEvalMotif evaluates one motif's Hybrid cell, recomputing epoch-aware
// link sets before every snapshot.
func (s *Sim) topoEvalMotif(ctx context.Context, mc *constellation.Constellation, m topo.Motif,
	times []time.Time, weights []float64, opt TopoOptions) (TopoCell, error) {
	refresh := func(t time.Time) {
		if ea, ok := m.(topo.EpochAware); ok {
			mc.ISLs = ea.LinksAt(mc, t)
		}
	}
	return s.topoEval(ctx, mc, Hybrid, times, weights, opt, refresh)
}

// topoEvalMode evaluates a mode cell with a static link set.
func (s *Sim) topoEvalMode(ctx context.Context, mc *constellation.Constellation, mode Mode,
	times []time.Time, weights []float64, opt TopoOptions) (TopoCell, error) {
	return s.topoEval(ctx, mc, mode, times, weights, opt, func(time.Time) {})
}

// topoEval computes one TopoCell on constellation mc: latency pooled over
// the snapshot grid, throughput and fault resilience at the epoch snapshot,
// and route churn over the seconds-scale window. refresh is called before
// every snapshot build so epoch-aware motifs can swap mc.ISLs (the builder
// reads them live).
func (s *Sim) topoEval(ctx context.Context, mc *constellation.Constellation, mode Mode,
	times []time.Time, weights []float64, opt TopoOptions, refresh func(time.Time)) (TopoCell, error) {
	cell := TopoCell{Mode: mode}
	o := s.baseOpts
	o.ISL = mode == Hybrid
	b, err := graph.NewBuilder(mc, s.Seg, s.Fleet, o)
	if err != nil {
		return cell, err
	}

	if mode == Hybrid {
		refresh(geo.Epoch)
		st := mc.StatsAt(geo.Epoch)
		cell.ISLCount, cell.MeanISLKm = st.Count, st.MeanKm
	}

	// Latency: pooled per-(pair, snapshot) RTT samples across the day.
	var rtts, wts []float64
	samples, unreachable := 0, 0
	for _, t := range times {
		if err := ctx.Err(); err != nil {
			return cell, err
		}
		refresh(t)
		n := b.At(t)
		rr, err := s.pairRTTs(ctx, n, false)
		if err != nil {
			return cell, err
		}
		for i, r := range rr {
			samples++
			if math.IsInf(r, 1) {
				unreachable++
				continue
			}
			rtts = append(rtts, r)
			wts = append(wts, weights[i])
		}
	}
	if len(rtts) == 0 {
		return cell, fmt.Errorf("core: no pair reachable in any snapshot")
	}
	cell.MedianRTTMs = stats.Percentile(rtts, 50)
	cell.P99RTTMs = stats.Percentile(rtts, 99)
	cell.DemandWeightedMedianRTTMs = stats.WeightedMedian(rtts, wts)
	cell.UnreachableFrac = float64(unreachable) / float64(samples)

	// Throughput at the epoch snapshot.
	refresh(geo.Epoch)
	tp, err := throughputOn(ctx, s, b.At(geo.Epoch), opt.K)
	if err != nil {
		return cell, err
	}
	cell.ThroughputGbps = tp.AggregateGbps

	// Fault resilience: the same realized outage plan re-applied to the
	// epoch snapshot (same seed across motifs, so every cell loses the
	// same satellites/sites and differences are purely topological).
	plan, err := fault.ForScenario(opt.FaultScenario, opt.FaultFraction, opt.FaultSeed)
	if err != nil {
		return cell, err
	}
	outages, err := plan.Realize(mc, len(s.Seg.Terminals))
	if err != nil {
		return cell, err
	}
	fo := o
	fo.Mask = outages.Mask
	fb, err := graph.NewBuilder(mc, s.Seg, s.Fleet, fo)
	if err != nil {
		return cell, err
	}
	fn := fb.At(geo.Epoch)
	frr, err := s.pairRTTs(ctx, fn, false)
	if err != nil {
		return cell, err
	}
	var faultRtts []float64
	faultUnreachable := 0
	for _, r := range frr {
		if math.IsInf(r, 1) {
			faultUnreachable++
			continue
		}
		faultRtts = append(faultRtts, r)
	}
	cell.FaultMedianRTTMs = stats.Percentile(faultRtts, 50)
	cell.FaultUnreachableFrac = float64(faultUnreachable) / float64(len(frr))
	ftp, err := throughputOn(ctx, s, fn, opt.K)
	if err != nil {
		return cell, err
	}
	if tp.AggregateGbps > 0 {
		cell.ThroughputRetention = ftp.AggregateGbps / tp.AggregateGbps
	}

	// Route churn over the seconds-scale window, walked with the
	// incremental advancer. The link set stays the one refreshed at the
	// epoch: laser re-pointing is snapshot-scale, and the advancer's
	// frozen ISL substrate requires it.
	steps := int(opt.ChurnWindow / opt.ChurnStep)
	w := &Walker{b: b}
	prevSig := make([]uint64, len(s.Pairs))
	valid := make([]bool, len(s.Pairs))
	for i := range valid {
		valid[i] = true
	}
	routeChanges := 0
	for si := 0; si <= steps; si++ {
		if err := ctx.Err(); err != nil {
			return cell, err
		}
		n := w.At(geo.Epoch.Add(time.Duration(si) * opt.ChurnStep))
		if d := w.LastDelta(); d != nil && d.FullRebuild {
			cell.FullRebuilds++
		}
		for pi, pair := range s.Pairs {
			if !valid[pi] {
				continue
			}
			p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
			if !ok || len(p.Nodes) < 3 {
				valid[pi] = false
				continue
			}
			sig := pathSignature(p)
			if si > 0 && sig != prevSig[pi] {
				routeChanges++
			}
			prevSig[pi] = sig
		}
	}
	used := 0
	for _, v := range valid {
		if v {
			used++
		}
	}
	if used > 0 && steps > 0 {
		perMin := float64(time.Minute) / float64(opt.ChurnStep)
		cell.RouteChangesPerMin = float64(routeChanges) / (float64(used) * float64(steps)) * perMin
	}
	return cell, nil
}

// DemandAdvantagePct returns how much lower (positive = better) the demand
// motif's demand-weighted median latency is than plus-grid's, both under
// Hybrid — the headline the demand-aware optimizer is judged on.
func (r *TopoResult) DemandAdvantagePct() float64 {
	dem, plus := r.Cell(topo.Demand, Hybrid), r.Cell(topo.PlusGrid, Hybrid)
	if dem == nil || plus == nil || plus.DemandWeightedMedianRTTMs <= 0 {
		return 0
	}
	return (plus.DemandWeightedMedianRTTMs - dem.DemandWeightedMedianRTTMs) /
		plus.DemandWeightedMedianRTTMs * 100
}

// WriteTopoReport renders the motif comparison table.
func WriteTopoReport(w io.Writer, r *TopoResult) {
	fmt.Fprintf(w, "topo sweep: %d motifs × 2 modes, %d snapshots, fault=%s@%.0f%%, churn %v/%v\n",
		len(r.Motifs), r.SnapshotsUsed, r.FaultScenario, r.FaultFraction*100, r.ChurnStep, r.ChurnWindow)
	fmt.Fprintf(w, "%-10s %-6s %6s %8s %8s %8s %8s %8s %9s %8s %8s\n",
		"motif", "mode", "isls", "med ms", "p99 ms", "dw-med", "unreach", "tput", "retention", "flt med", "chg/min")
	cells := append([]TopoCell(nil), r.Cells...)
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Motif != cells[j].Motif {
			return cells[i].Motif < cells[j].Motif
		}
		return cells[i].Mode < cells[j].Mode
	})
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-6s %6d %8.1f %8.1f %8.1f %7.1f%% %8.1f %8.2f %8.1f %8.2f\n",
			c.Motif, c.Mode, c.ISLCount, c.MedianRTTMs, c.P99RTTMs, c.DemandWeightedMedianRTTMs,
			c.UnreachableFrac*100, c.ThroughputGbps, c.ThroughputRetention,
			c.FaultMedianRTTMs, c.RouteChangesPerMin)
	}
	if adv := r.DemandAdvantagePct(); adv != 0 {
		fmt.Fprintf(w, "topo demand-aware vs +Grid on demand-weighted median latency: %+.1f%%\n", adv)
	}
}
