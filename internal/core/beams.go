package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"leosim/internal/flow"
	"leosim/internal/graph"
	"leosim/internal/safe"
)

// BeamPoint is one cell of the beam-limit sweep: aggregate throughput when
// each satellite can serve at most MaxGSLs terminals simultaneously
// (0 = unlimited, the paper's §2 assumption).
type BeamPoint struct {
	MaxGSLs       int
	Mode          Mode
	AggregateGbps float64
}

// RunBeamSweep quantifies §2's "careful frequency management alleviates
// interference" assumption: throughput (k=4, max-min fair) as the number of
// simultaneous beams per satellite is capped. BP leans on many relay GSLs
// per satellite and degrades first; hybrid needs only first/last hops.
func RunBeamSweep(ctx context.Context, s *Sim, caps []int, t time.Time) (out []BeamPoint, err error) {
	defer safe.RecoverTo(&err)
	for _, beams := range caps {
		if beams < 0 {
			return nil, fmt.Errorf("core: negative beam cap %d", beams)
		}
		for _, mode := range []Mode{BP, Hybrid} {
			b, err := s.builderWith(mode, func(o *graph.BuildOptions) {
				o.MaxGSLsPerSatellite = beams
			})
			if err != nil {
				return nil, err
			}
			n := b.At(t)
			paths, err := computePairPaths(ctx, s, n, 4)
			if err != nil {
				return nil, err
			}
			pr := flow.NewNetworkProblem(n, s.SatCapGbps)
			for _, pp := range paths {
				for _, p := range pp {
					if _, err := pr.AddPath(p); err != nil {
						return nil, err
					}
				}
			}
			alloc, err := pr.MaxMinFair()
			if err != nil {
				return nil, err
			}
			out = append(out, BeamPoint{
				MaxGSLs: beams, Mode: mode, AggregateGbps: flow.Sum(alloc),
			})
		}
	}
	return out, nil
}

// WriteBeamReport renders the sweep.
func WriteBeamReport(w io.Writer, points []BeamPoint) {
	get := func(beams int, m Mode) float64 {
		for _, p := range points {
			if p.MaxGSLs == beams && p.Mode == m {
				return p.AggregateGbps
			}
		}
		return 0
	}
	seen := map[int]bool{}
	for _, p := range points {
		if seen[p.MaxGSLs] {
			continue
		}
		seen[p.MaxGSLs] = true
		bp, hy := get(p.MaxGSLs, BP), get(p.MaxGSLs, Hybrid)
		label := fmt.Sprintf("%d", p.MaxGSLs)
		if p.MaxGSLs == 0 {
			label = "∞"
		}
		ratio := 0.0
		if bp > 0 {
			ratio = hy / bp
		}
		fmt.Fprintf(w, "beams %3s per sat: bp %7.0f Gbps, hybrid %7.0f Gbps (%.2fx)\n",
			label, bp, hy, ratio)
	}
}
