// Package routing implements routing schemes beyond shortest-path — in
// particular the minimum-maximum-utilization scheme §5 flags as future work
// ("A routing scheme that minimizes the maximum utilization, for example,
// can offer higher throughput, albeit at the cost of increased latency").
//
// The scheme is a greedy traffic-engineering heuristic: demands are routed
// one sub-flow at a time over the path minimizing a congestion-aware cost,
// where each link's cost grows with its current utilization. This spreads
// load off hot links, raising aggregate max-min throughput relative to pure
// shortest-delay multipath at some latency cost — exactly the trade-off the
// paper predicts.
package routing

import (
	"fmt"
	"math"
	"sort"

	"leosim/internal/graph"
)

// Demand is one unit of traffic to route: k sub-flows from Src to Dst.
type Demand struct {
	Src, Dst int32
	K        int
}

// Assignment is the routing outcome for one demand.
type Assignment struct {
	Demand Demand
	Paths  []graph.Path
}

// Options tune the congestion-aware router.
type Options struct {
	// Alpha scales the congestion penalty: a link's routing cost is
	// delay · (1 + Alpha·utilization²). Zero reduces to shortest-delay.
	Alpha float64
	// UnitGbps is the nominal rate each sub-flow contributes to link
	// utilization while routing (the allocator later decides true rates).
	UnitGbps float64
	// DisjointWithinDemand forces the K sub-flows of one demand onto
	// edge-disjoint paths, as the paper's baseline scheme does.
	DisjointWithinDemand bool
}

// DefaultOptions mirror the paper's setup: 4 edge-disjoint sub-flows, a
// strong congestion penalty, and 1 Gbps of nominal load per sub-flow.
func DefaultOptions() Options {
	return Options{Alpha: 8, UnitGbps: 1, DisjointWithinDemand: true}
}

// MinMaxUtilization routes all demands over network n with congestion-aware
// costs and returns the per-demand assignments. Demands are processed in
// decreasing-K then input order (deterministic).
func MinMaxUtilization(n *graph.Network, demands []Demand, opts Options) ([]Assignment, error) {
	if opts.UnitGbps <= 0 {
		return nil, fmt.Errorf("routing: UnitGbps must be positive, got %v", opts.UnitGbps)
	}
	load := make([]float64, len(n.Links)) // nominal Gbps per undirected link

	cost := func(li int32) float64 {
		l := n.Links[li]
		if l.CapGbps <= 0 {
			return math.Inf(1)
		}
		u := load[li] / l.CapGbps
		return l.OneWayMs * (1 + opts.Alpha*u*u)
	}

	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return demands[order[a]].K > demands[order[b]].K
	})

	out := make([]Assignment, len(demands))
	st := graph.AcquireSearch()
	defer st.Release()
	for _, di := range order {
		d := demands[di]
		if d.K < 1 {
			return nil, fmt.Errorf("routing: demand %d has K=%d", di, d.K)
		}
		asg := Assignment{Demand: d}
		st.ClearBans()
		for k := 0; k < d.K; k++ {
			// The shared kernel with the congestion-aware cost hook: Dist
			// accumulates cost, extracted paths report true delay.
			n.Search(st, graph.SearchSpec{Src: d.Src, Target: d.Dst, Cost: cost})
			p, ok := st.Path(d.Dst)
			if !ok {
				break
			}
			asg.Paths = append(asg.Paths, p)
			for _, li := range p.Links {
				load[li] += opts.UnitGbps
				if opts.DisjointWithinDemand {
					st.BanLink(li)
				}
			}
		}
		out[di] = asg
	}
	return out, nil
}

// MaxUtilization reports the highest nominal link utilization implied by the
// assignments at UnitGbps per sub-flow — the quantity the scheme minimizes.
func MaxUtilization(n *graph.Network, asgs []Assignment, unitGbps float64) float64 {
	load := make([]float64, len(n.Links))
	for _, a := range asgs {
		for _, p := range a.Paths {
			for _, li := range p.Links {
				load[li] += unitGbps
			}
		}
	}
	max := 0.0
	for li, l := range n.Links {
		if l.CapGbps <= 0 {
			continue
		}
		if u := load[li] / l.CapGbps; u > max {
			max = u
		}
	}
	return max
}

// MeanPathDelayMs returns the mean one-way delay across all routed sub-flow
// paths — the latency cost of traffic engineering.
func MeanPathDelayMs(asgs []Assignment) float64 {
	var sum float64
	var n int
	for _, a := range asgs {
		for _, p := range a.Paths {
			sum += p.OneWayMs
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
