// Package routing implements routing schemes beyond shortest-path — in
// particular the minimum-maximum-utilization scheme §5 flags as future work
// ("A routing scheme that minimizes the maximum utilization, for example,
// can offer higher throughput, albeit at the cost of increased latency").
//
// The scheme is a greedy traffic-engineering heuristic: demands are routed
// one sub-flow at a time over the path minimizing a congestion-aware cost,
// where each link's cost grows with its current utilization. This spreads
// load off hot links, raising aggregate max-min throughput relative to pure
// shortest-delay multipath at some latency cost — exactly the trade-off the
// paper predicts.
package routing

import (
	"fmt"
	"math"
	"sort"

	"leosim/internal/graph"
)

// Demand is one unit of traffic to route: k sub-flows from Src to Dst.
type Demand struct {
	Src, Dst int32
	K        int
}

// Assignment is the routing outcome for one demand.
type Assignment struct {
	Demand Demand
	Paths  []graph.Path
}

// Options tune the congestion-aware router.
type Options struct {
	// Alpha scales the congestion penalty: a link's routing cost is
	// delay · (1 + Alpha·utilization²). Zero reduces to shortest-delay.
	Alpha float64
	// UnitGbps is the nominal rate each sub-flow contributes to link
	// utilization while routing (the allocator later decides true rates).
	UnitGbps float64
	// DisjointWithinDemand forces the K sub-flows of one demand onto
	// edge-disjoint paths, as the paper's baseline scheme does.
	DisjointWithinDemand bool
}

// DefaultOptions mirror the paper's setup: 4 edge-disjoint sub-flows, a
// strong congestion penalty, and 1 Gbps of nominal load per sub-flow.
func DefaultOptions() Options {
	return Options{Alpha: 8, UnitGbps: 1, DisjointWithinDemand: true}
}

// MinMaxUtilization routes all demands over network n with congestion-aware
// costs and returns the per-demand assignments. Demands are processed in
// decreasing-K then input order (deterministic).
func MinMaxUtilization(n *graph.Network, demands []Demand, opts Options) ([]Assignment, error) {
	if opts.UnitGbps <= 0 {
		return nil, fmt.Errorf("routing: UnitGbps must be positive, got %v", opts.UnitGbps)
	}
	load := make([]float64, len(n.Links)) // nominal Gbps per undirected link

	cost := func(li int32) float64 {
		l := n.Links[li]
		if l.CapGbps <= 0 {
			return math.Inf(1)
		}
		u := load[li] / l.CapGbps
		return l.OneWayMs * (1 + opts.Alpha*u*u)
	}

	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return demands[order[a]].K > demands[order[b]].K
	})

	out := make([]Assignment, len(demands))
	for _, di := range order {
		d := demands[di]
		if d.K < 1 {
			return nil, fmt.Errorf("routing: demand %d has K=%d", di, d.K)
		}
		asg := Assignment{Demand: d}
		banned := map[int32]bool{}
		for k := 0; k < d.K; k++ {
			p, ok := dijkstraCost(n, d.Src, d.Dst, cost, banned)
			if !ok {
				break
			}
			asg.Paths = append(asg.Paths, p)
			for _, li := range p.Links {
				load[li] += opts.UnitGbps
				if opts.DisjointWithinDemand {
					banned[li] = true
				}
			}
		}
		out[di] = asg
	}
	return out, nil
}

// MaxUtilization reports the highest nominal link utilization implied by the
// assignments at UnitGbps per sub-flow — the quantity the scheme minimizes.
func MaxUtilization(n *graph.Network, asgs []Assignment, unitGbps float64) float64 {
	load := make([]float64, len(n.Links))
	for _, a := range asgs {
		for _, p := range a.Paths {
			for _, li := range p.Links {
				load[li] += unitGbps
			}
		}
	}
	max := 0.0
	for li, l := range n.Links {
		if l.CapGbps <= 0 {
			continue
		}
		if u := load[li] / l.CapGbps; u > max {
			max = u
		}
	}
	return max
}

// MeanPathDelayMs returns the mean one-way delay across all routed sub-flow
// paths — the latency cost of traffic engineering.
func MeanPathDelayMs(asgs []Assignment) float64 {
	var sum float64
	var n int
	for _, a := range asgs {
		for _, p := range a.Paths {
			sum += p.OneWayMs
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// dijkstraCost is Dijkstra over an arbitrary per-link cost function. It
// mirrors Network.Dijkstra but cannot share its implementation because the
// link weight is dynamic.
func dijkstraCost(n *graph.Network, src, dst int32, cost func(int32) float64,
	banned map[int32]bool) (graph.Path, bool) {

	nn := n.N()
	dist := make([]float64, nn)
	delay := make([]float64, nn)
	prev := make([]int32, nn)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &costPQ{{node: src}}
	for len(*q) > 0 {
		it := popPQ(q)
		if it.cost > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, e := range n.Edges(it.node) {
			if banned[e.Link] {
				continue
			}
			c := cost(e.Link)
			if math.IsInf(c, 1) {
				continue
			}
			nd := it.cost + c
			if nd < dist[e.To] {
				dist[e.To] = nd
				delay[e.To] = delay[it.node] + n.Links[e.Link].OneWayMs
				prev[e.To] = e.Link
				pushPQ(q, pqEntry{node: e.To, cost: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return graph.Path{}, false
	}
	// Walk back.
	var nodes, links []int32
	at := dst
	for at != src {
		li := prev[at]
		if li < 0 {
			return graph.Path{}, false
		}
		nodes = append(nodes, at)
		links = append(links, li)
		l := n.Links[li]
		if l.A == at {
			at = l.B
		} else {
			at = l.A
		}
	}
	nodes = append(nodes, src)
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return graph.Path{Nodes: nodes, Links: links, OneWayMs: delay[dst]}, true
}

type pqEntry struct {
	node int32
	cost float64
}

type costPQ []pqEntry

func (q costPQ) less(i, j int) bool { return q[i].cost < q[j].cost }

func pushPQ(q *costPQ, e pqEntry) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*q).less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func popPQ(q *costPQ) pqEntry {
	top := (*q)[0]
	n := len(*q) - 1
	(*q)[0] = (*q)[n]
	*q = (*q)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*q).less(l, small) {
			small = l
		}
		if r < n && (*q).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*q)[i], (*q)[small] = (*q)[small], (*q)[i]
		i = small
	}
	return top
}
