package routing

import (
	"math"
	"testing"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// twoCorridorNet: a and b are connected by a short corridor (one link) and a
// longer detour (two links), so a congestion-aware router facing many
// demands must start using the detour.
func twoCorridorNet() (*graph.Network, int32, int32) {
	n := &graph.Network{}
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 20).ToECEF(), "b")
	mid := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 15, Lon: 10, Alt: 550}.ToECEF(), "detour")
	n.AddLink(a, b, graph.LinkISL, 10)    // direct, cheap delay, small capacity
	n.AddLink(a, mid, graph.LinkISL, 100) // detour legs, big capacity
	n.AddLink(mid, b, graph.LinkISL, 100)
	return n, a, b
}

func TestShortestDelayWhenUncongested(t *testing.T) {
	n, a, b := twoCorridorNet()
	opts := DefaultOptions()
	opts.DisjointWithinDemand = false
	asgs, err := MinMaxUtilization(n, []Demand{{Src: a, Dst: b, K: 1}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(asgs) != 1 || len(asgs[0].Paths) != 1 {
		t.Fatalf("assignments: %+v", asgs)
	}
	if asgs[0].Paths[0].Hops() != 1 {
		t.Errorf("single uncongested demand should take the direct link")
	}
}

func TestCongestionSpreadsLoad(t *testing.T) {
	n, a, b := twoCorridorNet()
	// 30 demands × 1 Gbps nominal on a 10 Gbps direct link: the router
	// must shift a substantial share onto the detour.
	demands := make([]Demand, 30)
	for i := range demands {
		demands[i] = Demand{Src: a, Dst: b, K: 1}
	}
	opts := DefaultOptions()
	opts.DisjointWithinDemand = false
	asgs, err := MinMaxUtilization(n, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, detour := 0, 0
	for _, asg := range asgs {
		if len(asg.Paths) != 1 {
			t.Fatalf("demand unrouted: %+v", asg)
		}
		if asg.Paths[0].Hops() == 1 {
			direct++
		} else {
			detour++
		}
	}
	if detour == 0 {
		t.Fatalf("congestion-aware router never used the detour (direct=%d)", direct)
	}
	if direct == 0 {
		t.Fatalf("router abandoned the direct link entirely")
	}
	// Max utilization must beat pure shortest-path routing (which puts
	// all 30 on the 10 Gbps link → utilization 3.0).
	if mu := MaxUtilization(n, asgs, 1); mu >= 3.0 {
		t.Errorf("max utilization %v not improved over shortest-path 3.0", mu)
	}
	// And the mean delay is higher than the pure-direct delay — the
	// latency cost the paper predicts.
	shortest, _ := n.ShortestPath(a, b)
	if MeanPathDelayMs(asgs) <= shortest.OneWayMs {
		t.Errorf("traffic engineering should cost latency")
	}
}

func TestAlphaZeroIsShortestPath(t *testing.T) {
	n, a, b := twoCorridorNet()
	demands := make([]Demand, 20)
	for i := range demands {
		demands[i] = Demand{Src: a, Dst: b, K: 1}
	}
	opts := Options{Alpha: 0, UnitGbps: 1}
	asgs, err := MinMaxUtilization(n, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range asgs {
		if asg.Paths[0].Hops() != 1 {
			t.Fatalf("alpha=0 must always take the shortest path")
		}
	}
}

func TestDisjointWithinDemand(t *testing.T) {
	n, a, b := twoCorridorNet()
	asgs, err := MinMaxUtilization(n, []Demand{{Src: a, Dst: b, K: 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paths := asgs[0].Paths
	if len(paths) != 2 {
		t.Fatalf("want 2 disjoint paths, got %d", len(paths))
	}
	used := map[int32]bool{}
	for _, p := range paths {
		for _, li := range p.Links {
			if used[li] {
				t.Fatalf("link %d reused across sub-flows", li)
			}
			used[li] = true
		}
	}
	// K beyond the disjoint capacity yields fewer paths, not an error.
	asgs, err = MinMaxUtilization(n, []Demand{{Src: a, Dst: b, K: 5}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(asgs[0].Paths) != 2 {
		t.Errorf("only 2 disjoint routes exist, got %d", len(asgs[0].Paths))
	}
}

func TestValidationErrors(t *testing.T) {
	n, a, b := twoCorridorNet()
	if _, err := MinMaxUtilization(n, []Demand{{Src: a, Dst: b, K: 0}}, DefaultOptions()); err == nil {
		t.Errorf("K=0 must error")
	}
	bad := DefaultOptions()
	bad.UnitGbps = 0
	if _, err := MinMaxUtilization(n, nil, bad); err == nil {
		t.Errorf("zero unit must error")
	}
}

func TestUnroutableDemand(t *testing.T) {
	n := &graph.Network{}
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 50).ToECEF(), "b")
	asgs, err := MinMaxUtilization(n, []Demand{{Src: a, Dst: b, K: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(asgs[0].Paths) != 0 {
		t.Errorf("disconnected demand should have no paths")
	}
	if !math.IsNaN(MeanPathDelayMs(asgs)) {
		t.Errorf("mean delay of nothing should be NaN")
	}
	if MaxUtilization(n, asgs, 1) != 0 {
		t.Errorf("no load → zero utilization")
	}
}

func TestDeterminism(t *testing.T) {
	n, a, b := twoCorridorNet()
	demands := []Demand{{Src: a, Dst: b, K: 2}, {Src: b, Dst: a, K: 1}}
	x, _ := MinMaxUtilization(n, demands, DefaultOptions())
	y, _ := MinMaxUtilization(n, demands, DefaultOptions())
	for i := range x {
		if len(x[i].Paths) != len(y[i].Paths) {
			t.Fatalf("non-deterministic path counts")
		}
		for j := range x[i].Paths {
			if x[i].Paths[j].OneWayMs != y[i].Paths[j].OneWayMs {
				t.Fatalf("non-deterministic routing")
			}
		}
	}
}
