package routing

import (
	"testing"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// benchGrid mirrors the graph package's bench topology: a rows×cols torus
// grid on a lat/lon lattice.
func benchGrid(rows, cols int) *graph.Network {
	n := &graph.Network{}
	node := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			lat := -60 + 120*float64(r)/float64(rows-1)
			lon := -180 + 360*float64(c)/float64(cols)
			n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: lat, Lon: lon, Alt: 550}.ToECEF(), "")
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.AddLink(node(r, c), node(r, (c+1)%cols), graph.LinkISL, 100)
			if r+1 < rows {
				n.AddLink(node(r, c), node(r+1, c), graph.LinkISL, 100)
			}
		}
	}
	return n
}

// BenchmarkMinMaxUtilization measures the congestion-aware router on 64
// demands × 4 sub-flows over a 2k-node grid — the §5 future-work scheme's
// hot loop (one cost-weighted Dijkstra per sub-flow).
func BenchmarkMinMaxUtilization(b *testing.B) {
	n := benchGrid(40, 50)
	var demands []Demand
	nn := int32(n.N())
	for i := 0; i < 64; i++ {
		src := int32(i * 31 % int(nn))
		dst := (src + nn/2) % nn
		demands = append(demands, Demand{Src: src, Dst: dst, K: 4})
	}
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asgs, err := MinMaxUtilization(n, demands, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(asgs) != len(demands) {
			b.Fatal("missing assignments")
		}
	}
}
