package ground

import (
	"math"

	"leosim/internal/geo"
)

// GSO arc avoidance (§7, Fig 9): LEO up/down-links must keep a minimum
// angular separation from the bore-sight toward any geostationary satellite,
// because GSO satellites fly above the Equator in the same frequency bands.
// Starlink's filings specify 22°; Kuiper's 12° growing to 18°.

// GSOPolicy describes the arc-avoidance constraint for a ground terminal.
type GSOPolicy struct {
	// SeparationDeg is the minimum angle between a GT→LEO link and the
	// GT→GSO direction, for every GSO arc position above the horizon.
	// Zero disables the constraint.
	SeparationDeg float64
	// arcStepDeg is the sampling step along the GSO arc (longitude).
	arcStepDeg float64
}

// StarlinkGSOPolicy returns the 22° separation from SpaceX's filing.
func StarlinkGSOPolicy() GSOPolicy { return GSOPolicy{SeparationDeg: 22, arcStepDeg: 1} }

// GSOChecker precomputes, for one ground terminal, the directions toward the
// visible part of the geostationary arc, enabling fast per-satellite checks.
type GSOChecker struct {
	origin geo.Vec3
	dirs   []geo.Vec3 // unit vectors toward visible GSO arc points
	minSep float64    // radians
}

// NewGSOChecker builds a checker for a terminal at pos under policy p.
// A nil checker (disabled policy) allows all links.
func NewGSOChecker(pos geo.LatLon, p GSOPolicy) *GSOChecker {
	if p.SeparationDeg <= 0 {
		return nil
	}
	step := p.arcStepDeg
	if step <= 0 {
		step = 1
	}
	obs := pos.ToECEF()
	ck := &GSOChecker{origin: obs, minSep: p.SeparationDeg * geo.Deg}
	for lon := -180.0; lon < 180; lon += step {
		gso := geo.LatLon{Lat: 0, Lon: lon, Alt: geo.GSOAltitude}.ToECEF()
		// Only arc positions above the local horizon matter.
		if geo.Elevation(obs, gso) < 0 {
			continue
		}
		ck.dirs = append(ck.dirs, gso.Sub(obs).Unit())
	}
	return ck
}

// Allowed reports whether a link from the terminal to a satellite at ECEF
// position sat keeps the required separation from the whole visible GSO arc.
// A nil receiver (no policy) always allows.
func (ck *GSOChecker) Allowed(sat geo.Vec3) bool {
	if ck == nil {
		return true
	}
	d := sat.Sub(ck.origin).Unit()
	cosMin := math.Cos(ck.minSep)
	for _, g := range ck.dirs {
		if d.Dot(g) > cosMin {
			return false
		}
	}
	return true
}

// VisibleArcCount returns how many sampled GSO-arc directions are above the
// terminal's horizon — a proxy for how much of the sky the constraint
// blocks. It is 0 for terminals above ≈81° latitude, where the GSO arc is
// below the horizon and the constraint vanishes.
func (ck *GSOChecker) VisibleArcCount() int {
	if ck == nil {
		return 0
	}
	return len(ck.dirs)
}

// FOVReduction quantifies Fig 9: the fraction of otherwise-usable sky
// directions (elevation ≥ minElevDeg) that the GSO constraint blocks for a
// terminal at latitude latDeg. Directions are sampled on an
// elevation-azimuth grid weighted by solid angle.
func FOVReduction(latDeg, minElevDeg float64, p GSOPolicy) float64 {
	pos := geo.LL(latDeg, 0)
	ck := NewGSOChecker(pos, p)
	obs := pos.ToECEF()
	up := obs.Unit()
	// Local east/north basis.
	east := geo.Vec3{X: -math.Sin(0), Y: math.Cos(0), Z: 0} // lon=0 → east = +Y
	north := up.Cross(east).Scale(-1)
	_ = north

	var blocked, usable float64
	for el := minElevDeg; el < 90; el += 1 {
		w := math.Cos(el * geo.Deg) // solid-angle weight of the elevation band
		for az := 0.0; az < 360; az += 2 {
			dir := dirFromAzEl(up, east, az, el)
			// Probe a point far along this direction (satellite shell
			// distance is irrelevant to the angle test).
			sat := obs.Add(dir.Scale(1000))
			usable += w
			if !ck.Allowed(sat) {
				blocked += w
			}
		}
	}
	if usable == 0 {
		return 0
	}
	return blocked / usable
}

// dirFromAzEl builds a unit direction from azimuth (deg, clockwise from
// north) and elevation (deg) in the local frame defined by up and east.
func dirFromAzEl(up, east geo.Vec3, azDeg, elDeg float64) geo.Vec3 {
	north := up.Cross(east)
	sa, ca := math.Sincos(azDeg * geo.Deg)
	se, ce := math.Sincos(elDeg * geo.Deg)
	h := north.Scale(ca).Add(east.Scale(sa))
	return h.Scale(ce).Add(up.Scale(se)).Unit()
}
