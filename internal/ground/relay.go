package ground

import (
	"math"

	"leosim/internal/geo"
)

// RelayGrid returns transit-relay positions: points of a uniform
// spacingDeg × spacingDeg latitude-longitude grid that are on land and within
// maxDistKm (geodesic) of at least one city. With spacingDeg = 0.5 and
// maxDistKm = 2000 this reproduces the paper's densest relay deployment
// ("GTs ... placed uniformly every 0.5° on the latitude-longitude grid within
// a radius of 2,000 km of the cities").
func RelayGrid(cities []City, spacingDeg, maxDistKm float64) []geo.LatLon {
	if spacingDeg <= 0 || len(cities) == 0 {
		return nil
	}
	rows := int(math.Round(180 / spacingDeg))
	cols := int(math.Round(360 / spacingDeg))
	near := make([]bool, rows*cols)

	latOf := func(r int) float64 { return -90 + (float64(r)+0.5)*spacingDeg }
	lonOf := func(c int) float64 { return -180 + (float64(c)+0.5)*spacingDeg }

	// Mark every grid cell within range of each city. Pre-filter by
	// latitude band, then by true geodesic distance.
	dLatMax := maxDistKm / 111.19 // km per degree latitude
	for _, city := range cities {
		rLo := int(math.Floor((city.Lat - dLatMax + 90) / spacingDeg))
		rHi := int(math.Ceil((city.Lat + dLatMax + 90) / spacingDeg))
		if rLo < 0 {
			rLo = 0
		}
		if rHi > rows-1 {
			rHi = rows - 1
		}
		cpos := city.Position()
		for r := rLo; r <= rHi; r++ {
			lat := latOf(r)
			// Longitude reach at this latitude; near the poles a city
			// reaches all longitudes.
			cosLat := math.Cos(lat * geo.Deg)
			var cLo, cHi int
			if cosLat*111.19*180 <= maxDistKm || cosLat < 1e-6 {
				cLo, cHi = 0, cols-1
			} else {
				dLonMax := maxDistKm / (111.19 * cosLat)
				cLo = int(math.Floor((city.Lon - dLonMax + 180) / spacingDeg))
				cHi = int(math.Ceil((city.Lon + dLonMax + 180) / spacingDeg))
			}
			for cc := cLo; cc <= cHi; cc++ {
				c := ((cc % cols) + cols) % cols
				idx := r*cols + c
				if near[idx] {
					continue
				}
				if geo.GreatCircleKm(cpos, geo.LL(lat, lonOf(c))) <= maxDistKm {
					near[idx] = true
				}
			}
		}
	}

	var out []geo.LatLon
	for r := 0; r < rows; r++ {
		lat := latOf(r)
		for c := 0; c < cols; c++ {
			if !near[r*cols+c] {
				continue
			}
			lon := lonOf(c)
			if IsLand(lat, lon) {
				out = append(out, geo.LL(lat, lon))
			}
		}
	}
	return out
}
