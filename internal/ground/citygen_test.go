package ground

import "testing"

// TestCitiesPrefixStable is the metamorphic property behind every scale knob
// in the simulator: asking for more cities must extend the list, never
// reshuffle it. If Cities(m)[:n] ≠ Cities(n), changing -cities silently
// changes which traffic sources every experiment samples, and cross-scale
// comparisons (tiny vs reduced vs full) stop being apples to apples.
func TestCitiesPrefixStable(t *testing.T) {
	sizes := []int{600, 800, 1000}
	largest, err := Cities(sizes[len(sizes)-1])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sizes[:len(sizes)-1] {
		if n < len(anchorCities) {
			t.Fatalf("test size %d below the %d anchors — prefix property only holds past them",
				n, len(anchorCities))
		}
		cs, err := Cities(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != n {
			t.Fatalf("Cities(%d) returned %d cities", n, len(cs))
		}
		for i := range cs {
			if cs[i] != largest[i] {
				t.Fatalf("Cities(%d)[%d] = %+v, but Cities(%d)[%d] = %+v — prefix not stable",
					n, i, cs[i], sizes[len(sizes)-1], i, largest[i])
			}
		}
	}
}
