package ground

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"leosim/internal/geo"
)

// Cities returns a deterministic dataset of n populous cities, substituting
// for the GLA dataset. The first len(anchorCities) entries are the real
// anchors; the remainder are generated procedurally: each generated city is
// placed on land within a few hundred kilometers of a population-weighted
// anchor, with a Zipf-tailed population. This preserves the property the
// experiments depend on — demand clustered in the populated regions of every
// continent — without shipping the proprietary dataset.
//
// Cities are returned sorted by descending population. n must be at least 1;
// values beyond 5000 are rejected to catch accidental misuse.
func Cities(n int) ([]City, error) {
	if n < 1 || n > 5000 {
		return nil, fmt.Errorf("ground: city count %d outside [1,5000]", n)
	}
	anchors := make([]City, len(anchorCities))
	copy(anchors, anchorCities)
	sort.SliceStable(anchors, func(i, j int) bool { return anchors[i].Pop > anchors[j].Pop })
	if n <= len(anchors) {
		return anchors[:n], nil
	}

	out := anchors
	rng := rand.New(rand.NewSource(20201104)) // HotNets '20 dates; fixed for determinism

	// Population-weighted anchor sampling.
	cum := make([]float64, len(anchors))
	var total float64
	for i, c := range anchors {
		total += c.Pop
		cum[i] = total
	}
	pick := func() City {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(anchors) {
			i = len(anchors) - 1
		}
		return anchors[i]
	}

	// Zipf-ish tail: city ranked r (beyond the anchors) has population
	// ≈ K/r^0.9, continuing the anchor distribution downward.
	minAnchorPop := anchors[len(anchors)-1].Pop
	for len(out) < n {
		a := pick()
		// Offset 50–600 km in a random direction; retry until on land.
		var pos geo.LatLon
		ok := false
		for try := 0; try < 40; try++ {
			brg := rng.Float64() * 360
			dist := 50 + rng.Float64()*550
			pos = geo.Destination(geo.LL(a.Lat, a.Lon), brg, dist)
			if IsLand(pos.Lat, pos.Lon) {
				ok = true
				break
			}
		}
		if !ok {
			// Coastal anchor surrounded by water at mask resolution:
			// fall back to the anchor location itself.
			pos = geo.LL(a.Lat, a.Lon)
		}
		rank := float64(len(out) - len(anchors) + 2)
		pop := minAnchorPop * math.Pow(2/(1+rank), 0.9)
		out = append(out, City{
			Name:    fmt.Sprintf("%s-%d", a.Name, len(out)),
			Country: a.Country,
			Lat:     round2(pos.Lat),
			Lon:     round2(pos.Lon),
			Pop:     pop,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pop > out[j].Pop })
	return out, nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// CityByName returns the anchor city with the given name.
func CityByName(name string) (City, error) {
	for _, c := range anchorCities {
		if c.Name == name {
			return c, nil
		}
	}
	return City{}, fmt.Errorf("ground: no anchor city named %q", name)
}

// Position returns the city's surface position.
func (c City) Position() geo.LatLon { return geo.LL(c.Lat, c.Lon) }
