package ground

import (
	"fmt"

	"leosim/internal/geo"
)

// TerminalKind distinguishes the three kinds of ground terminals of §3.
type TerminalKind uint8

const (
	// KindCity terminals source and sink traffic, and may also transit.
	KindCity TerminalKind = iota
	// KindRelay terminals only transit traffic (the 0.5° grid GTs).
	KindRelay
	// KindAircraft terminals are in-flight aircraft over water acting as
	// transit relays.
	KindAircraft
)

// String implements fmt.Stringer.
func (k TerminalKind) String() string {
	switch k {
	case KindCity:
		return "city"
	case KindRelay:
		return "relay"
	case KindAircraft:
		return "aircraft"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Terminal is a ground (or airborne) terminal that can form radio links to
// satellites.
type Terminal struct {
	// ID is the terminal's index within its Segment.
	ID int
	// Kind says whether this is a city, a grid relay, or an aircraft.
	Kind TerminalKind
	// Name is a human-readable identifier (city name, relay grid cell,
	// flight number).
	Name string
	// Pos is the geodetic position. City and relay terminals are at the
	// surface; aircraft carry a cruise altitude.
	Pos geo.LatLon
	// ECEF caches Pos.ToECEF(). For aircraft it is the position at the
	// snapshot the Segment was built for.
	ECEF geo.Vec3
	// CityIndex is the index into the city list for KindCity, else -1.
	CityIndex int
}

// NewTerminal builds a terminal and caches its ECEF position.
func NewTerminal(id int, kind TerminalKind, name string, pos geo.LatLon, cityIdx int) Terminal {
	return Terminal{
		ID:        id,
		Kind:      kind,
		Name:      name,
		Pos:       pos,
		ECEF:      pos.ToECEF(),
		CityIndex: cityIdx,
	}
}

// Segment is the full ground segment: cities first, then grid relays; the
// time-varying aircraft terminals are appended per snapshot by the graph
// builder.
type Segment struct {
	Cities    []City
	Terminals []Terminal // cities then relays, in that order
	NumCity   int
	NumRelay  int
}

// CityTerminal returns the terminal corresponding to city index i.
func (s *Segment) CityTerminal(i int) Terminal { return s.Terminals[i] }

// NewSegment builds the ground segment: one terminal per city plus transit
// relays on a spacingDeg grid within maxRelayKm of any city (on land). Pass
// spacingDeg = 0 to omit grid relays entirely.
func NewSegment(cities []City, spacingDeg, maxRelayKm float64) (*Segment, error) {
	if len(cities) == 0 {
		return nil, fmt.Errorf("ground: no cities")
	}
	s := &Segment{Cities: cities, NumCity: len(cities)}
	for i, c := range cities {
		s.Terminals = append(s.Terminals,
			NewTerminal(i, KindCity, c.Name, c.Position(), i))
	}
	if spacingDeg > 0 {
		relays := RelayGrid(cities, spacingDeg, maxRelayKm)
		for _, p := range relays {
			id := len(s.Terminals)
			s.Terminals = append(s.Terminals, NewTerminal(
				id, KindRelay,
				fmt.Sprintf("relay@%.2f,%.2f", p.Lat, p.Lon), p, -1))
		}
		s.NumRelay = len(relays)
	}
	return s, nil
}
