package ground

import (
	"math"
	"testing"

	"leosim/internal/geo"
)

func TestIsLandKnownPoints(t *testing.T) {
	land := []struct {
		name     string
		lat, lon float64
	}{
		{"central US", 39, -98},
		{"Amazon", -5, -60},
		{"Sahara", 23, 10},
		{"Siberia", 60, 100},
		{"central Australia", -25, 134},
		{"India", 22, 78},
		{"central Europe", 50, 10},
		{"China", 35, 105},
		{"southern Africa", -25, 25},
	}
	for _, c := range land {
		if !IsLand(c.lat, c.lon) {
			t.Errorf("%s (%v,%v) should be land", c.name, c.lat, c.lon)
		}
	}
	water := []struct {
		name     string
		lat, lon float64
	}{
		{"mid North Atlantic", 45, -35},
		{"mid South Atlantic", -25, -15},
		{"central Pacific", 0, -150},
		{"Indian Ocean", -20, 80},
		{"Southern Ocean", -60, 0},
		{"Arctic Ocean", 87, 0},
		{"Tasman Sea", -38, 160},
		{"Gulf of Guinea", 0, 0},
	}
	for _, c := range water {
		if !IsWater(c.lat, c.lon) {
			t.Errorf("%s (%v,%v) should be water", c.name, c.lat, c.lon)
		}
	}
}

func TestLandFraction(t *testing.T) {
	// Earth's land fraction is ≈0.29; the coarse mask must be in a sane
	// neighborhood or every downstream experiment distorts.
	f := LandFraction()
	if f < 0.20 || f > 0.40 {
		t.Errorf("land fraction = %.3f, want ≈0.29", f)
	}
}

func TestAnchorCitiesOnLand(t *testing.T) {
	// Anchor coordinates must fall on the coarse mask's land (coastal
	// cities tolerate one neighboring cell).
	coastalOK := func(lat, lon float64) bool {
		for _, d := range [][2]float64{{0, 0}, {0.5, 0}, {-0.5, 0}, {0, 0.5}, {0, -0.5}, {0.5, 0.5}, {-0.5, -0.5}, {0.5, -0.5}, {-0.5, 0.5}, {0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			if IsLand(lat+d[0], lon+d[1]) {
				return true
			}
		}
		return false
	}
	for _, c := range anchorCities {
		switch c.Name {
		case "Honolulu", "Singapore", "Hong Kong", "Kingston", "San Juan",
			"Dakar", "Suva", "Nouméa", "Christchurch":
			continue // small islands/peninsulas below mask resolution
		}
		if !coastalOK(c.Lat, c.Lon) {
			t.Errorf("anchor %s (%v,%v) not on coarse land mask", c.Name, c.Lat, c.Lon)
		}
	}
}

func TestAnchorCitiesValid(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range anchorCities {
		if !geo.LL(c.Lat, c.Lon).Valid() {
			t.Errorf("%s has invalid coordinates", c.Name)
		}
		if c.Pop <= 0 {
			t.Errorf("%s has non-positive population", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate anchor city %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(anchorCities) < 200 {
		t.Errorf("only %d anchor cities, want ≥ 200", len(anchorCities))
	}
}

func TestCitiesGeneration(t *testing.T) {
	cities, err := Cities(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 1000 {
		t.Fatalf("got %d cities", len(cities))
	}
	// Sorted by descending population, Tokyo first.
	if cities[0].Name != "Tokyo" {
		t.Errorf("largest city = %s, want Tokyo", cities[0].Name)
	}
	for i := 1; i < len(cities); i++ {
		if cities[i].Pop > cities[i-1].Pop {
			t.Fatalf("cities not sorted by population at %d", i)
		}
	}
	// Deterministic.
	again, _ := Cities(1000)
	for i := range cities {
		if cities[i] != again[i] {
			t.Fatalf("city generation not deterministic at %d: %+v vs %+v",
				i, cities[i], again[i])
		}
	}
	// Hemisphere/continent spread: all four lon/lat quadrants populated.
	var q [4]int
	for _, c := range cities {
		i := 0
		if c.Lat < 0 {
			i |= 1
		}
		if c.Lon < 0 {
			i |= 2
		}
		q[i]++
	}
	for i, n := range q {
		if n < 20 {
			t.Errorf("quadrant %d has only %d cities", i, n)
		}
	}
}

func TestCitiesBounds(t *testing.T) {
	if _, err := Cities(0); err == nil {
		t.Errorf("Cities(0) must fail")
	}
	if _, err := Cities(10000); err == nil {
		t.Errorf("Cities(10000) must fail")
	}
	small, err := Cities(10)
	if err != nil || len(small) != 10 {
		t.Fatalf("Cities(10): %v, %d", err, len(small))
	}
}

func TestCityByName(t *testing.T) {
	c, err := CityByName("Durban")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Lat+29.86) > 0.01 {
		t.Errorf("Durban lat = %v", c.Lat)
	}
	if _, err := CityByName("Atlantis"); err == nil {
		t.Errorf("unknown city must fail")
	}
}

func TestRelayGrid(t *testing.T) {
	// A single inland city: relays must be on land, within range, and
	// roughly fill the disc.
	cities := []City{{"TestCity", "X", 48, 10, 5}} // Bavaria
	relays := RelayGrid(cities, 1.0, 1000)
	if len(relays) < 100 {
		t.Fatalf("only %d relays", len(relays))
	}
	for _, r := range relays {
		if !IsLand(r.Lat, r.Lon) {
			t.Fatalf("relay %v on water", r)
		}
		if d := geo.GreatCircleKm(r, geo.LL(48, 10)); d > 1000+1 {
			t.Fatalf("relay %v at %v km from city", r, d)
		}
	}
	// Denser spacing yields roughly quadratically more relays.
	dense := RelayGrid(cities, 0.5, 1000)
	if len(dense) < 3*len(relays) {
		t.Errorf("0.5° grid has %d relays vs %d at 1° — want ≈4×", len(dense), len(relays))
	}
}

func TestRelayGridEmpty(t *testing.T) {
	if r := RelayGrid(nil, 0.5, 2000); r != nil {
		t.Errorf("no cities → no relays")
	}
	if r := RelayGrid([]City{{"X", "X", 0, 0, 1}}, 0, 2000); r != nil {
		t.Errorf("zero spacing → no relays")
	}
	// A city in the middle of the ocean yields few or no land relays.
	oceanCity := []City{{"Ocean", "X", 0, -150, 1}}
	if r := RelayGrid(oceanCity, 1, 500); len(r) != 0 {
		t.Errorf("mid-Pacific city produced %d land relays", len(r))
	}
}

func TestRelayGridAntimeridian(t *testing.T) {
	// A city near the date line must mark cells on both sides.
	cities := []City{{"Fiji-ish", "X", -18, 178, 1}}
	relays := RelayGrid(cities, 1.0, 2500) // reaches northern New Zealand
	hasEast, hasWest := false, false
	for _, r := range relays {
		if r.Lon > 0 {
			hasEast = true
		} else {
			hasWest = true
		}
	}
	// New Zealand (east lon) and the -180 side islands are both within
	// 2000 km; at minimum the search must not crash and must find NZ.
	if !hasEast {
		t.Errorf("no relays east of the date line")
	}
	_ = hasWest // western side may be all ocean at mask resolution
}

func TestNewSegment(t *testing.T) {
	cities, err := Cities(50)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegment(cities, 2.0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumCity != 50 {
		t.Errorf("NumCity = %d", seg.NumCity)
	}
	if seg.NumRelay == 0 {
		t.Errorf("no relays generated")
	}
	if len(seg.Terminals) != seg.NumCity+seg.NumRelay {
		t.Errorf("terminal count mismatch")
	}
	for i, term := range seg.Terminals {
		if term.ID != i {
			t.Fatalf("terminal %d has ID %d", i, term.ID)
		}
		if i < 50 && term.Kind != KindCity {
			t.Fatalf("terminal %d should be a city", i)
		}
		if i >= 50 && term.Kind != KindRelay {
			t.Fatalf("terminal %d should be a relay", i)
		}
		if term.ECEF.IsZero() {
			t.Fatalf("terminal %d has no cached ECEF", i)
		}
	}
	if seg.CityTerminal(3).CityIndex != 3 {
		t.Errorf("CityTerminal(3) index = %d", seg.CityTerminal(3).CityIndex)
	}
	// Without relays.
	noRelay, err := NewSegment(cities, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noRelay.NumRelay != 0 || len(noRelay.Terminals) != 50 {
		t.Errorf("segment without relays malformed")
	}
	if _, err := NewSegment(nil, 0, 0); err == nil {
		t.Errorf("empty city list must fail")
	}
}

func TestTerminalKindString(t *testing.T) {
	if KindCity.String() != "city" || KindRelay.String() != "relay" ||
		KindAircraft.String() != "aircraft" {
		t.Errorf("kind strings wrong")
	}
	if TerminalKind(9).String() == "" {
		t.Errorf("unknown kind should still format")
	}
}

func TestGSOCheckerEquator(t *testing.T) {
	// For an equatorial GT, a satellite directly overhead is blocked:
	// the GSO arc passes through the zenith there.
	ck := NewGSOChecker(geo.LL(0, 0), StarlinkGSOPolicy())
	if ck == nil {
		t.Fatal("checker should be non-nil")
	}
	overhead := geo.LatLon{Lat: 0, Lon: 0, Alt: 550}.ToECEF()
	if ck.Allowed(overhead) {
		t.Errorf("zenith satellite at the Equator must be blocked")
	}
	// A satellite far to the north at high elevation is allowed.
	north := geo.LatLon{Lat: 7.5, Lon: 0, Alt: 550}.ToECEF()
	if !ck.Allowed(north) {
		t.Errorf("satellite 7.5° north of an equatorial GT should clear the arc")
	}
}

func TestGSOCheckerHighLatitude(t *testing.T) {
	// Above ~81° latitude the GSO arc is below the horizon entirely.
	ck := NewGSOChecker(geo.LL(85, 0), StarlinkGSOPolicy())
	if ck.VisibleArcCount() != 0 {
		t.Errorf("GSO arc visible from 85°N? count=%d", ck.VisibleArcCount())
	}
	anywhere := geo.LatLon{Lat: 85, Lon: 0, Alt: 550}.ToECEF()
	if !ck.Allowed(anywhere) {
		t.Errorf("no visible arc → all links allowed")
	}
}

func TestGSOCheckerDisabled(t *testing.T) {
	var ck *GSOChecker
	if !ck.Allowed(geo.Vec3{X: 7000}) {
		t.Errorf("nil checker must allow everything")
	}
	if ck := NewGSOChecker(geo.LL(0, 0), GSOPolicy{}); ck != nil {
		t.Errorf("zero policy must return nil checker")
	}
}

func TestFOVReductionProfile(t *testing.T) {
	// Fig 9: the FoV reduction is largest at the Equator and vanishes at
	// high latitude.
	p := StarlinkGSOPolicy()
	eq := FOVReduction(0, 40, p)
	mid := FOVReduction(45, 40, p)
	high := FOVReduction(85, 40, p)
	if eq <= mid || mid < high {
		t.Errorf("FoV reduction not decreasing with latitude: %v %v %v", eq, mid, high)
	}
	if eq < 0.15 {
		t.Errorf("equatorial FoV reduction = %v, expected substantial (Fig 9)", eq)
	}
	if high > 0.01 {
		t.Errorf("polar FoV reduction = %v, want ≈0", high)
	}
}
