// Package ground models the terrestrial side of the network: the city
// dataset (traffic sources/sinks), transit relay terminals on a
// latitude-longitude grid, a coarse land/water mask, and ground-terminal
// visibility rules including the GSO arc-avoidance constraint.
package ground

import (
	"math"
	"sync"

	"leosim/internal/geo"
)

// The land mask substitutes for the global-land-mask dataset the paper uses
// [27]. It is a set of coarse continent polygons rasterized onto a 0.25°
// grid. Only two decisions depend on it — whether an aircraft is over water
// and whether a relay terminal location is on land — and both tolerate
// coarse coastlines at the 0.5° relay granularity the paper works at.

// polygon is a closed ring of (lon, lat) vertices in degrees.
type polygon [][2]float64

// continents are deliberately coarse outlines. Inland seas (Black Sea,
// Caspian) are treated as land, which only affects relay placement there and
// not any ocean-crossing logic.
var continents = map[string]polygon{
	"north-america": {
		{-168, 65}, {-166, 60}, {-158, 58}, {-152, 60}, {-140, 60},
		{-130, 55}, {-125, 48}, {-124, 40}, {-117, 33}, {-110, 24},
		{-105, 20}, {-95, 15}, {-91, 13.5}, {-87, 13}, {-85, 10},
		{-80, 8}, {-77, 8},
		{-80, 10}, {-83, 11.5}, {-84, 15}, {-88, 16}, {-90, 21}, {-97, 26},
		{-94, 29}, {-89, 29}, {-83, 28}, {-81, 25}, {-80, 27},
		{-76, 35}, {-74, 40}, {-70, 42}, {-66, 44}, {-60, 46},
		{-56, 50}, {-58, 54}, {-62, 58}, {-68, 60}, {-75, 62},
		{-85, 66}, {-95, 68}, {-110, 68}, {-125, 70}, {-140, 70},
		{-155, 71}, {-162, 68},
	},
	"south-america": {
		{-77, 7}, {-75.6, 10.5}, {-72, 12}, {-64, 11}, {-60, 9},
		{-52, 5}, {-50, 0}, {-44, -3}, {-38, -3.3}, {-35, -5.5},
		{-37, -12},
		{-40, -20}, {-48, -26}, {-53, -34}, {-57, -38}, {-62, -40},
		{-65, -45}, {-68, -50}, {-69, -54}, {-72, -52}, {-73, -46},
		{-73, -38}, {-71, -30}, {-70, -20}, {-76, -14}, {-81, -6},
		{-80, 0}, {-77, 4},
	},
	"africa": {
		{-17, 15}, {-16, 20}, {-13, 26}, {-10, 31}, {-9, 34},
		{-5, 36}, {0, 36}, {10, 37}, {20, 32}, {30, 31.3}, {32.4, 31.3}, {34, 28},
		{37, 22}, {43, 12}, {48, 8}, {51, 11}, {46, 2},
		{41, -2}, {40, -10}, {36, -18}, {33, -26}, {28, -33},
		{20, -35}, {18, -32}, {15, -27}, {12, -18}, {9, -7},
		{9, 0}, {6, 4}, {-5, 5}, {-8, 5}, {-13, 8},
	},
	"eurasia": {
		{-9, 37}, {-9, 43}, {-2, 44}, {-5, 48}, {-2, 50},
		{3, 51}, {8, 54}, {7, 58}, {5, 62}, {10, 64},
		{14, 68}, {20, 70}, {30, 71}, {40, 68},
		{50, 69}, {60, 69}, {75, 72}, {90, 75}, {105, 77},
		{115, 74}, {130, 72}, {140, 72}, {150, 70}, {160, 70},
		{170, 67}, {179, 65}, {178, 62}, {170, 60}, {160, 53},
		{150, 59}, {142, 54}, {135, 44}, {130, 42}, {129, 35},
		{126, 35}, {124, 39}, {121, 39}, {118, 38}, {121, 37.5},
		{122.5, 37}, {122, 36}, {119, 35}, {122, 31},
		{121, 28}, {115, 22}, {108, 21}, {108.5, 16.2}, {106, 10}, {105, 4},
		{104, 1}, {101, 2}, {100, 6}, {98, 8}, {98, 14},
		{94, 16}, {90, 22},
		{87, 21}, {85, 19}, {80, 15}, {80, 8}, {77, 8},
		{73, 16}, {70, 21}, {66, 25}, {61, 25}, {57, 26},
		{52, 28}, {48, 30}, {48, 29}, {48, 26.5}, {51.2, 26},
		{51.6, 24.5}, {54, 24}, {56.5, 26.5}, {58.5, 25.5},
		{60, 22}, {59, 20}, {55, 17}, {52, 16}, {45, 12}, {43, 13},
		{39, 20}, {35, 28}, {36, 36}, {30, 36}, {27, 36},
		{26, 40}, {22, 37}, {20, 40}, {19, 42}, {13, 46},
		{8, 44}, {4, 43}, {0, 40}, {-2, 37}, {-5, 36},
	},
	"italy": {
		{7.5, 44.5}, {13.5, 46}, {14, 42}, {16, 41.5}, {18, 40},
		{17, 39.5}, {16, 38}, {15.5, 40}, {12, 41.5}, {10, 43},
	},
	"australia": {
		{114, -22}, {114, -34}, {118, -35}, {124, -33}, {130, -32},
		{136, -35}, {140, -38}, {147, -39}, {150, -37}, {153, -30},
		{153, -25}, {149, -20}, {146, -18}, {142, -11}, {138, -16},
		{136, -12}, {131, -12}, {126, -14}, {122, -17},
	},
	"greenland": {
		{-45, 60}, {-40, 64}, {-22, 70}, {-20, 76}, {-30, 82},
		{-55, 82}, {-60, 76}, {-55, 70}, {-52, 65},
	},
	"britain-ireland": {
		{-10, 51}, {-5, 50}, {1, 51}, {0, 53}, {-2, 56},
		{-4, 59}, {-8, 58}, {-10, 54},
	},
	"japan": {
		{130, 31}, {134, 34}, {140, 35}, {142, 41}, {145, 44},
		{141, 45}, {139, 41}, {135, 35}, {130, 33},
	},
	"sumatra": {
		{95, 5}, {100, 2}, {104, -3}, {106, -6}, {102, -5}, {97, 2},
	},
	"java": {
		{105, -6}, {114, -7}, {114, -8}, {105, -8},
	},
	"borneo": {
		{109, 1}, {114, 5}, {117, 6}, {119, 1}, {116, -3}, {110, -2},
	},
	"sulawesi": {
		{119, 1}, {121, 1}, {123, -1}, {122, -4}, {120, -5}, {119, -3},
	},
	"new-guinea": {
		{131, -1}, {138, -2}, {145, -5}, {150, -9}, {147, -10},
		{140, -8}, {133, -4},
	},
	"madagascar": {
		{44, -16}, {50, -16}, {47, -25}, {44, -22},
	},
	"new-zealand": {
		{173, -35}, {176, -38}, {178, -38}, {175, -41}, {170, -44},
		{167, -46}, {170, -46}, {172, -41},
	},
	"philippines": {
		{120, 18}, {122, 18}, {124, 12}, {126, 7}, {122, 6}, {120, 14},
	},
	"sri-lanka": {
		{80, 9}, {82, 8}, {81, 6}, {80, 7},
	},
	"cuba-hispaniola": {
		{-85, 22}, {-80, 23}, {-74, 20}, {-69, 19}, {-71, 18},
		{-77, 20}, {-84, 21},
	},
	"iceland": {
		{-24, 65}, {-18, 66}, {-14, 65}, {-16, 64}, {-22, 63},
	},
	"tasmania": {
		{145, -41}, {148, -41}, {148, -43}, {146, -43},
	},
	"sicily": {
		{12.5, 38.2}, {15.6, 38.3}, {15.1, 36.7}, {12.4, 37.6},
	},
	"taiwan-hainan": {
		{120, 25}, {122, 25}, {121, 22}, {120, 23},
	},
}

// pointInPolygon implements the even-odd ray-casting rule on the lon/lat
// plane. The coarse polygons never cross the antimeridian, so plain planar
// math suffices.
func pointInPolygon(lon, lat float64, poly polygon) bool {
	in := false
	n := len(poly)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		xi, yi := poly[i][0], poly[i][1]
		xj, yj := poly[j][0], poly[j][1]
		if (yi > lat) != (yj > lat) &&
			lon < (xj-xi)*(lat-yi)/(yj-yi)+xi {
			in = !in
		}
	}
	return in
}

// isLandExact evaluates the polygons directly (no raster).
func isLandExact(lat, lon float64) bool {
	for _, poly := range continents {
		if pointInPolygon(lon, lat, poly) {
			return true
		}
	}
	return false
}

// Raster resolution: 0.25° cells.
const (
	maskRes  = 0.25
	maskCols = int(360 / maskRes)
	maskRows = int(180 / maskRes)
)

var (
	maskOnce sync.Once
	mask     []bool // row-major, row = lat index from -90, col = lon from -180
)

func buildMask() {
	mask = make([]bool, maskCols*maskRows)
	for r := 0; r < maskRows; r++ {
		lat := -90 + (float64(r)+0.5)*maskRes
		for c := 0; c < maskCols; c++ {
			lon := -180 + (float64(c)+0.5)*maskRes
			mask[r*maskCols+c] = isLandExact(lat, lon)
		}
	}
}

// IsLand reports whether the given surface point is on land according to the
// coarse mask. Queries hit a lazily built 0.25° raster and are O(1).
func IsLand(lat, lon float64) bool {
	maskOnce.Do(buildMask)
	p := geo.LL(lat, lon).Normalize()
	r := int((p.Lat + 90) / maskRes)
	c := int((p.Lon + 180) / maskRes)
	if r < 0 {
		r = 0
	} else if r >= maskRows {
		r = maskRows - 1
	}
	if c < 0 {
		c = 0
	} else if c >= maskCols {
		c = maskCols - 1
	}
	return mask[r*maskCols+c]
}

// IsWater is the complement of IsLand.
func IsWater(lat, lon float64) bool { return !IsLand(lat, lon) }

// LandFraction returns the fraction of raster cells that are land, weighted
// by cell area (cos latitude). Earth's true land fraction is ≈0.29; the
// coarse mask should land in that neighborhood, which the tests assert.
func LandFraction() float64 {
	maskOnce.Do(buildMask)
	var land, total float64
	for r := 0; r < maskRows; r++ {
		lat := -90 + (float64(r)+0.5)*maskRes
		w := cosDeg(lat)
		for c := 0; c < maskCols; c++ {
			total += w
			if mask[r*maskCols+c] {
				land += w
			}
		}
	}
	return land / total
}

func cosDeg(d float64) float64 { return math.Cos(d * geo.Deg) }
