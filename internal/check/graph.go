package check

import (
	"math"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
)

// Geometry holds the physical ground truth a snapshot graph is checked
// against: the constellation that produced its satellite nodes, the resolved
// per-shell elevation masks, and tolerances. Build one per experiment (not
// per snapshot); the closed-form ISL bounds it caches are time-invariant.
type Geometry struct {
	Const *constellation.Constellation
	// MinElevDeg is the effective minimum elevation mask per shell, after
	// any experiment-level override.
	MinElevDeg []float64

	// RadiusTolKm bounds how far a satellite may sit from its shell's
	// nominal orbital radius. The analytic J2-secular propagator keeps
	// circular orbits at exactly a = R+h (up to rounding); SGP4 adds
	// short-period oscillations of a few kilometers, so NewGeometry widens
	// the tolerance when any satellite uses it.
	RadiusTolKm float64
	// ISLSlackKm widens the closed-form ISL length bounds, absorbing the
	// same propagator deviation on both endpoints.
	ISLSlackKm float64
	// MinISLAltKm, when positive, requires every ISL to clear this altitude
	// (the paper's ~80 km lower-atmosphere floor). Leave zero for sparse
	// test shells whose intra-plane chords legitimately dip lower.
	MinISLAltKm float64

	// islBounds caches [min,max] chord length per (shell, Δplane, Δslot)
	// relation. +Grid uses a handful of distinct relations; motifs with
	// freer link choices (diagonal offsets, nearest-neighbour matchings,
	// demand-aware placement) fill in more keys but hit the same closed
	// form — the bounds depend only on the relation, never on the motif.
	islBounds map[islKey][2]float64
}

type islKey struct {
	shell         int
	dPlane, dSlot int
}

// Tolerances for quantities the builder derives deterministically from node
// positions: the checker recomputes them with the same float inputs, so only
// rounding noise needs absorbing.
const (
	elevTolDeg   = 1e-9
	rangeTolKm   = 1e-6
	delayTolMs   = 1e-9
	groundTolKm  = 0.5  // terrain model: terminals sit on the sphere
	aircraftCeil = 25.0 // km; aircraft relays cruise far below this
)

// NewGeometry derives the checking ground truth from a constellation and the
// experiment's elevation override (0 = use each shell's own mask), matching
// how graph.Builder resolves masks.
func NewGeometry(c *constellation.Constellation, minElevOverrideDeg float64) *Geometry {
	g := &Geometry{
		Const:       c,
		MinElevDeg:  make([]float64, len(c.Shells)),
		RadiusTolKm: 1e-3,
		ISLSlackKm:  1e-3,
		islBounds:   map[islKey][2]float64{},
	}
	for i, sh := range c.Shells {
		g.MinElevDeg[i] = sh.MinElevationDeg
		if minElevOverrideDeg > 0 {
			g.MinElevDeg[i] = minElevOverrideDeg
		}
	}
	if !c.Analytic() {
		// SGP4: J2 short-period terms move the radius by up to ~10 km and
		// shift along-track phase; loosen both bounds well past that.
		g.RadiusTolKm = 30
		g.ISLSlackKm = 100
	}
	return g
}

// CheckShape validates the structural invariants of a snapshot graph that
// need no physical ground truth: array shapes, the sat/city/relay/aircraft
// node layout, link endpoint sanity, kind/endpoint consistency, duplicate
// links, and finite positive link attributes. Usable on its own (the fuzz
// targets call it on arbitrary built graphs).
func CheckShape(r *Report, n *graph.Network) {
	nn := n.N()
	if len(n.Pos) != nn || len(n.Name) != nn {
		r.Violatef(ClassGraphShape, "node arrays disagree: kind=%d pos=%d name=%d",
			nn, len(n.Pos), len(n.Name))
		return // indexing below would be unsafe
	}
	if n.NumSat+n.NumCity+n.NumRelay+n.NumAircraft != nn {
		r.Violatef(ClassGraphShape, "node counts %d+%d+%d+%d != %d nodes",
			n.NumSat, n.NumCity, n.NumRelay, n.NumAircraft, nn)
	}
	wantKind := func(i int) graph.NodeKind {
		switch {
		case i < n.NumSat:
			return graph.NodeSatellite
		case i < n.NumSat+n.NumCity:
			return graph.NodeCity
		case i < n.NumSat+n.NumCity+n.NumRelay:
			return graph.NodeRelay
		default:
			return graph.NodeAircraft
		}
	}
	for i := 0; i < nn; i++ {
		if k := n.Kind[i]; k != wantKind(i) {
			r.Violatef(ClassGraphShape, "node %d (%s) is %v, layout says %v",
				i, n.Name[i], k, wantKind(i))
		}
	}
	r.Checked("nodes", nn)

	type linkID struct {
		a, b int32
		kind graph.LinkKind
	}
	seen := make(map[linkID]bool, len(n.Links))
	for li, l := range n.Links {
		if l.A < 0 || int(l.A) >= nn || l.B < 0 || int(l.B) >= nn {
			r.Violatef(ClassGraphShape, "link %d endpoints (%d,%d) outside [0,%d)",
				li, l.A, l.B, nn)
			continue
		}
		if l.A == l.B {
			r.Violatef(ClassGraphShape, "link %d is a self-loop on node %d", li, l.A)
			continue
		}
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		id := linkID{a: a, b: b, kind: l.Kind}
		if seen[id] {
			r.Violatef(ClassGraphShape, "duplicate %v link %d–%d", l.Kind, a, b)
		}
		seen[id] = true
		aSat, bSat := n.Kind[l.A] == graph.NodeSatellite, n.Kind[l.B] == graph.NodeSatellite
		switch l.Kind {
		case graph.LinkGSL:
			if aSat == bSat {
				r.Violatef(ClassGraphShape, "GSL %d joins %v and %v (want one satellite, one terminal)",
					li, n.Kind[l.A], n.Kind[l.B])
			}
		case graph.LinkISL:
			if !aSat || !bSat {
				r.Violatef(ClassGraphShape, "ISL %d joins %v and %v (want two satellites)",
					li, n.Kind[l.A], n.Kind[l.B])
			}
		case graph.LinkFiber:
			if aSat || bSat {
				r.Violatef(ClassGraphShape, "fiber link %d touches a satellite", li)
			}
		default:
			r.Violatef(ClassGraphShape, "link %d has unknown kind %d", li, l.Kind)
		}
		if math.IsNaN(l.CapGbps) || math.IsInf(l.CapGbps, 0) || l.CapGbps < 0 {
			r.Violatef(ClassGraphShape, "link %d has non-physical capacity %v", li, l.CapGbps)
		}
		if math.IsNaN(l.OneWayMs) || math.IsInf(l.OneWayMs, 0) || l.OneWayMs <= 0 {
			r.Violatef(ClassLinkDelay, "link %d has non-physical delay %v ms", li, l.OneWayMs)
		}
	}
	r.Checked("links", len(n.Links))
}

// CheckNetwork runs every per-snapshot physics check against the graph:
// structure (CheckShape), node geometry, GSL elevation/slant-range
// feasibility, per-relation ISL length bounds, and link propagation delays.
func (g *Geometry) CheckNetwork(r *Report, n *graph.Network) {
	CheckShape(r, n)
	if n.N() != len(n.Pos) || len(n.Name) != len(n.Pos) {
		return // shape too broken to check physics
	}
	if n.NumSat != g.Const.Size() {
		r.Violatef(ClassGraphShape, "graph has %d satellite nodes, constellation has %d",
			n.NumSat, g.Const.Size())
		return
	}
	g.checkNodes(r, n)
	g.checkLinks(r, n)
}

func (g *Geometry) checkNodes(r *Report, n *graph.Network) {
	for i := 0; i < n.N(); i++ {
		p := n.Pos[i]
		if !finiteVec(p) {
			r.Violatef(ClassNodeGeometry, "node %d (%s) has non-finite position %v",
				i, n.Name[i], p)
			continue
		}
		rad := p.Norm()
		if i < n.NumSat {
			want := geo.EarthRadius + g.Const.ShellOf(i).AltitudeKm
			if math.Abs(rad-want) > g.RadiusTolKm {
				r.Violatef(ClassNodeGeometry,
					"satellite %d (%s) at radius %.3f km, shell orbit is %.3f km (tol %.3g)",
					i, n.Name[i], rad, want, g.RadiusTolKm)
			}
			continue
		}
		lo, hi := geo.EarthRadius-groundTolKm, geo.EarthRadius+groundTolKm
		if n.Kind[i] == graph.NodeAircraft {
			hi = geo.EarthRadius + aircraftCeil
		}
		if rad < lo || rad > hi {
			r.Violatef(ClassNodeGeometry,
				"%v node %d (%s) at radius %.3f km outside [%.1f,%.1f]",
				n.Kind[i], i, n.Name[i], rad, lo, hi)
		}
	}
}

func (g *Geometry) checkLinks(r *Report, n *graph.Network) {
	gsl, isl := 0, 0
	for li, l := range n.Links {
		if l.A < 0 || int(l.A) >= n.N() || l.B < 0 || int(l.B) >= n.N() || l.A == l.B {
			continue // already reported by CheckShape
		}
		pa, pb := n.Pos[l.A], n.Pos[l.B]
		if !finiteVec(pa) || !finiteVec(pb) {
			continue
		}
		dist := pa.Distance(pb)

		// Propagation delay must match the positions it was derived from.
		speed := geo.LightSpeed
		effDist := dist
		if l.Kind == graph.LinkFiber {
			speed = geo.FiberSpeed
			effDist = dist * 1.5 // terrestrial path stretch, as built
		}
		wantMs := effDist / speed * 1000
		if math.Abs(l.OneWayMs-wantMs) > delayTolMs+1e-12*wantMs {
			r.Violatef(ClassLinkDelay,
				"link %d (%v %d–%d) delay %.9f ms, positions imply %.9f ms",
				li, l.Kind, l.A, l.B, l.OneWayMs, wantMs)
		}

		switch l.Kind {
		case graph.LinkGSL:
			sat, term := l.A, l.B
			if n.IsGroundSide(sat) {
				sat, term = term, sat
			}
			if n.IsGroundSide(sat) || !n.IsGroundSide(term) {
				continue // malformed endpoints, reported by CheckShape
			}
			gsl++
			shell := g.Const.Sats[sat].ShellIndex
			minElev := g.MinElevDeg[shell]
			if e := geo.Elevation(n.Pos[term], n.Pos[sat]); e < minElev-elevTolDeg {
				r.Violatef(ClassGSLElevation,
					"GSL %d: satellite %s is %.4f° above %s's horizon, mask is %.1f°",
					li, n.Name[sat], e, n.Name[term], minElev)
			}
			maxRange := geo.MaxSlantRange(n.Pos[term].Norm(), n.Pos[sat].Norm(), minElev)
			if dist > maxRange+rangeTolKm {
				r.Violatef(ClassGSLRange,
					"GSL %d: %s–%s is %.3f km, elevation mask %.1f° admits at most %.3f km",
					li, n.Name[term], n.Name[sat], dist, minElev, maxRange)
			}
		case graph.LinkISL:
			if n.IsGroundSide(l.A) || n.IsGroundSide(l.B) {
				continue
			}
			isl++
			g.checkISL(r, n, li, l, dist)
		}
	}
	r.Checked("gsl-links", gsl)
	r.Checked("isl-links", isl)
}

func (g *Geometry) checkISL(r *Report, n *graph.Network, li int, l graph.Link, dist float64) {
	sa, sb := g.Const.Sats[l.A], g.Const.Sats[l.B]
	if sa.ShellIndex != sb.ShellIndex {
		r.Violatef(ClassISLGeometry, "ISL %d crosses shells %d and %d",
			li, sa.ShellIndex, sb.ShellIndex)
		return
	}
	lo, hi := g.islBoundsFor(sa.ShellIndex, sb.Plane-sa.Plane, sb.Slot-sa.Slot)
	if dist < lo-g.ISLSlackKm || dist > hi+g.ISLSlackKm {
		r.Violatef(ClassISLGeometry,
			"ISL %d (%s–%s, Δplane=%d Δslot=%d) is %.3f km, geometry bounds it to [%.3f,%.3f]",
			li, n.Name[l.A], n.Name[l.B], sb.Plane-sa.Plane, sb.Slot-sa.Slot, dist, lo, hi)
	}
	if g.MinISLAltKm > 0 {
		if alt := geo.SegmentMinAltitudeKm(n.Pos[l.A], n.Pos[l.B]); alt < g.MinISLAltKm {
			r.Violatef(ClassISLGeometry,
				"ISL %d (%s–%s) dips to %.1f km altitude, floor is %.1f km",
				li, n.Name[l.A], n.Name[l.B], alt, g.MinISLAltKm)
		}
	}
}

// islBoundsFor returns the exact [min,max] length a +Grid ISL between two
// satellites of the shell with the given plane/slot offsets can take, at any
// time.
//
// Both satellites move on circular orbits of radius r and inclination i with
// RAAN separation ΔΩ and argument-of-latitude separation Δu; under the
// J2-secular model both separations are constants of motion (all satellites
// of a shell share a, i and hence identical drift rates). Writing u for the
// first satellite's argument of latitude, the central angle ψ between them
// satisfies
//
//	cos ψ = ½(A+B)·cosΔu + ½(A−B)·cos(2u+Δu) + C
//	A = cosΔΩ,  B = cos²i·cosΔΩ + sin²i,  C = −cos i·sinΔΩ·sinΔu
//
// — a pure sinusoid in 2u plus a constant, so the extrema are exact:
// cosψ ∈ [K1−|K2|, K1+|K2|] with K1 the constant part and K2 = ½(A−B).
// The chord length is r·√(2−2cosψ). For intra-plane links (ΔΩ=0) the
// oscillating term vanishes and the bound collapses to the constant
// 2r·sin(Δu/2).
func (g *Geometry) islBoundsFor(shell, dPlane, dSlot int) (lo, hi float64) {
	key := islKey{shell: shell, dPlane: dPlane, dSlot: dSlot}
	if b, ok := g.islBounds[key]; ok {
		return b[0], b[1]
	}
	sh := g.Const.Shells[shell]
	r := geo.EarthRadius + sh.AltitudeKm
	inc := sh.InclinationDeg * geo.Deg
	dRaan := sh.RAANSpreadDeg / float64(sh.Planes) * float64(dPlane) * geo.Deg
	dU := (360/float64(sh.SatsPerPlane)*float64(dSlot) +
		float64(sh.WalkerF)*360/float64(sh.Size())*float64(dPlane)) * geo.Deg

	ci, si := math.Cos(inc), math.Sin(inc)
	a := math.Cos(dRaan)
	b := ci*ci*math.Cos(dRaan) + si*si
	k1 := 0.5*(a+b)*math.Cos(dU) - ci*math.Sin(dRaan)*math.Sin(dU)
	k2 := 0.5 * math.Abs(a-b)

	chord := func(cosPsi float64) float64 {
		q := 2 - 2*cosPsi
		if q < 0 {
			q = 0
		}
		return r * math.Sqrt(q)
	}
	lo, hi = chord(k1+k2), chord(k1-k2) // larger cosψ ⇒ shorter chord
	g.islBounds[key] = [2]float64{lo, hi}
	return lo, hi
}

func finiteVec(v geo.Vec3) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
