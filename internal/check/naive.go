package check

import (
	"math"

	"leosim/internal/graph"
)

// NaiveShortestMs is the reference shortest-path oracle: a textbook O(V²+E)
// Dijkstra with linear-scan minimum selection over the network's public
// adjacency, sharing none of the optimized kernel's machinery (no CSR walk,
// no heap, no pooled state, no stamping). satTransitOnly reproduces the §6
// transit restriction: ground-side nodes other than src never forward.
// Returns the one-way delay in ms and whether dst is reachable.
func NaiveShortestMs(n *graph.Network, src, dst int32, satTransitOnly bool) (float64, bool) {
	nn := n.N()
	dist := make([]float64, nn)
	done := make([]bool, nn)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u := int32(-1)
		best := math.Inf(1)
		for v := int32(0); v < int32(nn); v++ {
			if !done[v] && dist[v] < best {
				best, u = dist[v], v
			}
		}
		if u < 0 {
			break // nothing reachable left
		}
		done[u] = true
		if u == dst {
			return dist[u], true
		}
		if satTransitOnly && u != src && n.IsGroundSide(u) {
			continue // may terminate a path, never forwards
		}
		for _, e := range n.Edges(u) {
			if nd := dist[u] + n.Links[e.Link].OneWayMs; nd < dist[e.To] {
				dist[e.To] = nd
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return 0, false
	}
	return dist[dst], true
}
