// Package check is the simulator's invariant-validation subsystem: a set of
// independent oracles that verify physical and algorithmic invariants of
// snapshot graphs, routed paths, and flow allocations. None of the checks
// re-run the code under test — they hold its outputs against closed-form
// geometry (slant-range and elevation bounds, analytic ISL length bounds
// valid for any intra-shell motif, the free-space propagation lower bound),
// against naive reference
// algorithms (linear-scan Dijkstra), and against defining mathematical
// properties (max-min bottleneck conditions), so a bug in an optimized fast
// path cannot hide behind the same bug in its checker.
//
// The checks are pure functions over built artifacts and accumulate findings
// into a Report; the experiment driver (core.RunCheck, surfaced as `leosim
// check`) sweeps them across snapshots and modes.
package check

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Class partitions violations by the invariant they breach. Distinct classes
// are the unit of the acceptance test "a corrupted link is caught by at least
// three distinct invariant classes".
type Class string

const (
	// ClassGraphShape covers structural graph defects: endpoint indices out
	// of range, self-loops, duplicate links, GSLs between two ground nodes,
	// ISLs touching a terminal, negative capacities, bad node layout.
	ClassGraphShape Class = "graph-shape"
	// ClassNodeGeometry covers per-node physical defects: non-finite
	// positions, satellites off their shell's orbital radius, ground
	// terminals away from the surface.
	ClassNodeGeometry Class = "node-geometry"
	// ClassGSLElevation flags ground-satellite links below the shell's
	// minimum elevation mask.
	ClassGSLElevation Class = "gsl-elevation"
	// ClassGSLRange flags ground-satellite links longer than the maximum
	// slant range the elevation mask admits.
	ClassGSLRange Class = "gsl-range"
	// ClassISLGeometry flags ISLs whose length falls outside the closed-form
	// bounds for their (ΔΩ, Δu) plane/slot relation, or that dip into the
	// lower atmosphere. The bounds are per-relation, not per-motif: +Grid,
	// diagonal offsets, ladder rings and matching-based motifs all validate
	// against the same analytic envelope.
	ClassISLGeometry Class = "isl-geometry"
	// ClassLinkDelay flags links whose OneWayMs disagrees with the
	// propagation delay recomputed from endpoint positions.
	ClassLinkDelay Class = "link-delay"
	// ClassPathContinuity flags returned paths that are not actual walks in
	// the snapshot graph (phantom links, disconnected consecutive nodes,
	// repeated links, delay not equal to the sum of link delays).
	ClassPathContinuity Class = "path-continuity"
	// ClassLatencyBound flags latencies below the free-space lower bound
	// (the taut-string path between the endpoints at the speed of light).
	ClassLatencyBound Class = "latency-bound"
	// ClassLatencySymmetry flags src→dst vs dst→src shortest-path distance
	// disagreements on the undirected snapshot graph.
	ClassLatencySymmetry Class = "latency-symmetry"
	// ClassDominance flags pairs where Hybrid (BP + ISLs, a supergraph)
	// ends up with a longer shortest path than BP.
	ClassDominance Class = "mode-dominance"
	// ClassOptimality flags kernel shortest-path distances that disagree
	// with the naive linear-scan reference Dijkstra.
	ClassOptimality Class = "dijkstra-optimality"
	// ClassFlow flags max-min allocations that oversubscribe an edge or
	// violate the water-filling bottleneck condition.
	ClassFlow Class = "flow-maxmin"
)

// Violation is one concrete breach of an invariant.
type Violation struct {
	Class  Class  `json:"class"`
	Detail string `json:"detail"`
	// Snapshot and Mode locate the breach when the check ran under an
	// experiment sweep; empty for context-free checks.
	Snapshot string `json:"snapshot,omitempty"`
	Mode     string `json:"mode,omitempty"`
}

// maxSamplesPerClass bounds how many violation details a report retains per
// class; beyond it only the count grows. A corrupt graph trips thousands of
// identical violations and the report must stay readable (and serializable).
const maxSamplesPerClass = 20

// Report accumulates check outcomes: how much was checked, and what failed.
// The zero value is ready to use. Not safe for concurrent use.
type Report struct {
	checked    map[string]int
	counts     map[Class]int
	violations []Violation

	// snapshot/mode labels stamped onto violations added while set.
	snapshot, mode string
}

// SetContext stamps subsequently added violations with a snapshot/mode label.
func (r *Report) SetContext(snapshot, mode string) {
	r.snapshot, r.mode = snapshot, mode
}

// Checked increments a named coverage counter (links, paths, pairs, …) so a
// clean report still proves the checks ran over real work.
func (r *Report) Checked(what string, n int) {
	if r.checked == nil {
		r.checked = map[string]int{}
	}
	r.checked[what] += n
}

// Violatef records a violation of class c with a formatted detail.
func (r *Report) Violatef(c Class, format string, args ...interface{}) {
	if r.counts == nil {
		r.counts = map[Class]int{}
	}
	r.counts[c]++
	if r.counts[c] <= maxSamplesPerClass {
		r.violations = append(r.violations, Violation{
			Class:    c,
			Detail:   fmt.Sprintf(format, args...),
			Snapshot: r.snapshot,
			Mode:     r.mode,
		})
	}
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.counts) == 0 }

// Total returns the total violation count across classes.
func (r *Report) Total() int {
	t := 0
	for _, n := range r.counts {
		t += n
	}
	return t
}

// Classes returns the violated classes, sorted.
func (r *Report) Classes() []Class {
	out := make([]Class, 0, len(r.counts))
	for c := range r.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the violation count for one class.
func (r *Report) Count(c Class) int { return r.counts[c] }

// Violations returns the retained violation samples (capped per class).
func (r *Report) Violations() []Violation { return r.violations }

// CheckedCount returns one coverage counter.
func (r *Report) CheckedCount(what string) int { return r.checked[what] }

// MarshalJSON renders the report with deterministic key order: coverage
// counters, per-class totals, then the capped violation samples.
func (r *Report) MarshalJSON() ([]byte, error) {
	counts := map[string]int{}
	for c, n := range r.counts {
		counts[string(c)] = n
	}
	v := r.violations
	if v == nil {
		v = []Violation{}
	}
	return json.Marshal(struct {
		OK         bool           `json:"ok"`
		Checked    map[string]int `json:"checked"`
		Total      int            `json:"totalViolations"`
		Counts     map[string]int `json:"violationsByClass"`
		Violations []Violation    `json:"violations"`
	}{r.OK(), r.checked, r.Total(), counts, v})
}

// Summary renders a one-line outcome for logs.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("ok (%d checks)", r.totalChecked())
	}
	return fmt.Sprintf("%d violations in %d classes over %d checks",
		r.Total(), len(r.counts), r.totalChecked())
}

func (r *Report) totalChecked() int {
	t := 0
	for _, n := range r.checked {
		t += n
	}
	return t
}
