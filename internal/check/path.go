package check

import (
	"math"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

const (
	// pathDelayTolMs absorbs summation-order rounding when re-adding link
	// delays along a path.
	pathDelayTolMs = 1e-9
	// symmetryTolMs absorbs rounding between the two directions of one
	// shortest-path computation (same links, reversed addition order) and
	// between tie-equivalent paths.
	symmetryTolMs = 1e-6
)

// CheckPath verifies that p is a well-formed simple walk from src to dst in
// n: endpoints match, every hop is a real link joining its two nodes, no
// link or node repeats, the reported delay is the sum of the link delays,
// and the delay respects the free-space propagation lower bound between the
// endpoints (light in vacuum along the taut string around the Earth).
func CheckPath(r *Report, n *graph.Network, src, dst int32, p graph.Path) {
	r.Checked("paths", 1)
	if len(p.Nodes) == 0 {
		r.Violatef(ClassPathContinuity, "path %d→%d has no nodes", src, dst)
		return
	}
	if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
		r.Violatef(ClassPathContinuity, "path %d→%d runs %d→%d",
			src, dst, p.Nodes[0], p.Nodes[len(p.Nodes)-1])
	}
	if len(p.Links) != len(p.Nodes)-1 {
		r.Violatef(ClassPathContinuity, "path %d→%d has %d nodes but %d links",
			src, dst, len(p.Nodes), len(p.Links))
		return
	}
	seenNode := make(map[int32]bool, len(p.Nodes))
	for _, v := range p.Nodes {
		if v < 0 || int(v) >= n.N() {
			r.Violatef(ClassPathContinuity, "path %d→%d visits node %d outside [0,%d)",
				src, dst, v, n.N())
			return
		}
		if seenNode[v] {
			r.Violatef(ClassPathContinuity, "path %d→%d visits node %d twice", src, dst, v)
		}
		seenNode[v] = true
	}
	var sum float64
	seenLink := make(map[int32]bool, len(p.Links))
	for i, li := range p.Links {
		if li < 0 || int(li) >= len(n.Links) {
			r.Violatef(ClassPathContinuity, "path %d→%d hop %d uses phantom link %d",
				src, dst, i, li)
			return
		}
		if seenLink[li] {
			r.Violatef(ClassPathContinuity, "path %d→%d crosses link %d twice", src, dst, li)
		}
		seenLink[li] = true
		l := n.Links[li]
		a, b := p.Nodes[i], p.Nodes[i+1]
		if !(l.A == a && l.B == b) && !(l.A == b && l.B == a) {
			r.Violatef(ClassPathContinuity,
				"path %d→%d hop %d: link %d joins %d–%d, path claims %d–%d",
				src, dst, i, li, l.A, l.B, a, b)
		}
		sum += l.OneWayMs
	}
	if math.Abs(sum-p.OneWayMs) > pathDelayTolMs {
		r.Violatef(ClassPathContinuity,
			"path %d→%d reports %.9f ms, its links sum to %.9f ms",
			src, dst, p.OneWayMs, sum)
	}
	if lb := FreeSpaceLowerBoundMs(n.Pos[src], n.Pos[dst]); p.OneWayMs < lb-pathDelayTolMs {
		r.Violatef(ClassLatencyBound,
			"path %d→%d delay %.6f ms beats the free-space lower bound %.6f ms",
			src, dst, p.OneWayMs, lb)
	}
}

// FreeSpaceLowerBoundMs returns the physical one-way delay floor between two
// positions: light in vacuum along the shortest curve that clears the
// Earth's surface. No route through any network — radio, laser or fiber —
// can beat it.
func FreeSpaceLowerBoundMs(a, b geo.Vec3) float64 {
	return geo.MinFreeSpacePathKm(a, b) / geo.LightSpeed * 1000
}

// CheckSymmetry verifies that shortest-path delay over the undirected
// snapshot graph is direction-independent for the pair.
func CheckSymmetry(r *Report, n *graph.Network, src, dst int32) {
	r.Checked("symmetry-pairs", 1)
	fwd, okF := n.ShortestPath(src, dst)
	rev, okR := n.ShortestPath(dst, src)
	if okF != okR {
		r.Violatef(ClassLatencySymmetry,
			"pair %d↔%d reachable only one way (fwd=%v rev=%v)", src, dst, okF, okR)
		return
	}
	if okF && math.Abs(fwd.OneWayMs-rev.OneWayMs) > symmetryTolMs {
		r.Violatef(ClassLatencySymmetry,
			"pair %d↔%d: %.6f ms forward vs %.6f ms reverse",
			src, dst, fwd.OneWayMs, rev.OneWayMs)
	}
}

// CheckDominance verifies the paper's Hybrid-dominates-BP property for one
// pair: hybrid's link set is a strict superset of bent-pipe's (same GSLs
// plus ISLs), so its shortest path can never be slower.
func CheckDominance(r *Report, bp, hybrid *graph.Network, src, dst int32) {
	r.Checked("dominance-pairs", 1)
	pb, okB := bp.ShortestPath(src, dst)
	ph, okH := hybrid.ShortestPath(src, dst)
	if okB && !okH {
		r.Violatef(ClassDominance,
			"pair %d→%d reachable under BP but not under Hybrid", src, dst)
		return
	}
	if okB && okH && ph.OneWayMs > pb.OneWayMs+symmetryTolMs {
		r.Violatef(ClassDominance,
			"pair %d→%d: Hybrid %.6f ms slower than BP %.6f ms",
			src, dst, ph.OneWayMs, pb.OneWayMs)
	}
}

// CheckOptimality verifies the optimized Dijkstra kernel against the naive
// linear-scan reference for one pair, and validates the kernel's path. The
// two implementations share no code beyond the graph representation.
func CheckOptimality(r *Report, n *graph.Network, src, dst int32, satTransitOnly bool) {
	r.Checked("optimality-pairs", 1)
	var p graph.Path
	var ok bool
	if satTransitOnly {
		p, ok = n.ShortestPathSatTransit(src, dst)
	} else {
		p, ok = n.ShortestPath(src, dst)
	}
	want, reach := NaiveShortestMs(n, src, dst, satTransitOnly)
	if ok != reach {
		r.Violatef(ClassOptimality,
			"pair %d→%d: kernel reachable=%v, reference says %v", src, dst, ok, reach)
		return
	}
	if !ok {
		return
	}
	CheckPath(r, n, src, dst, p)
	if math.Abs(p.OneWayMs-want) > pathDelayTolMs+1e-12*want {
		r.Violatef(ClassOptimality,
			"pair %d→%d: kernel found %.9f ms, reference Dijkstra %.9f ms",
			src, dst, p.OneWayMs, want)
	}
}
