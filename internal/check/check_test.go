package check

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// buildAt builds the hybrid snapshot graph of a scenario at epoch+offset.
func buildAt(t *testing.T, sc *Scenario, offset time.Duration) *graph.Network {
	t.Helper()
	b, err := sc.Builder()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	return b.At(geo.Epoch.Add(offset))
}

// TestCleanScenarios sweeps randomized miniature systems through every
// invariant check: a correct pipeline must produce zero violations across
// seeds, snapshot times, transit modes and traffic pairs.
func TestCleanScenarios(t *testing.T) {
	offsets := []time.Duration{0, 17 * time.Minute, 3 * time.Hour}
	for seed := int64(1); seed <= 8; seed++ {
		sc, err := RandomScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		geom := sc.Geometry()
		bpOpts := sc.Opts
		bpOpts.ISL = false
		bpBuilder, err := graph.NewBuilder(sc.Const, sc.Seg, nil, bpOpts)
		if err != nil {
			t.Fatalf("seed %d: bp builder: %v", seed, err)
		}
		var r Report
		for _, off := range offsets {
			n := buildAt(t, sc, off)
			bp := bpBuilder.At(geo.Epoch.Add(off))
			geom.CheckNetwork(&r, n)
			geom.CheckNetwork(&r, bp)
			for _, pair := range sc.Pairs {
				src, dst := n.CityNode(pair[0]), n.CityNode(pair[1])
				CheckOptimality(&r, n, src, dst, false)
				CheckOptimality(&r, n, src, dst, true)
				CheckSymmetry(&r, n, src, dst)
				CheckDominance(&r, bp, n, src, dst)
			}
		}
		if !r.OK() {
			for _, v := range r.Violations() {
				t.Errorf("seed %d: [%s] %s", seed, v.Class, v.Detail)
			}
			t.Fatalf("seed %d: %s", seed, r.Summary())
		}
		if r.CheckedCount("isl-links") == 0 || r.CheckedCount("gsl-links") == 0 {
			t.Fatalf("seed %d: checks ran over no links (%s)", seed, r.Summary())
		}
	}
}

// TestISLBoundsContainment samples one scenario densely over time and holds
// every ISL length to the closed-form bounds, independent of the graph
// layer: this pins the analytic derivation against the actual propagator.
func TestISLBoundsContainment(t *testing.T) {
	sc, err := RandomScenario(42)
	if err != nil {
		t.Fatal(err)
	}
	geom := sc.Geometry()
	for k := 0; k < 60; k++ {
		snap := sc.Const.SnapshotAt(geo.Epoch.Add(time.Duration(k) * 97 * time.Second))
		for _, l := range sc.Const.ISLs {
			sa, sb := sc.Const.Sats[l.A], sc.Const.Sats[l.B]
			if sa.ShellIndex != sb.ShellIndex {
				t.Fatalf("cross-shell ISL %v", l)
			}
			lo, hi := geom.islBoundsFor(sa.ShellIndex, sb.Plane-sa.Plane, sb.Slot-sa.Slot)
			d := snap.Pos[l.A].Distance(snap.Pos[l.B])
			if d < lo-geom.ISLSlackKm || d > hi+geom.ISLSlackKm {
				t.Fatalf("ISL %d-%d at t%d: length %.6f outside [%.6f,%.6f]",
					l.A, l.B, k, d, lo, hi)
			}
		}
	}
}

// TestIntraPlaneBoundsDegenerate checks the ΔΩ=0 collapse: intra-plane
// chords are constant, so the bounds must pinch to a single value.
func TestIntraPlaneBoundsDegenerate(t *testing.T) {
	sc, err := RandomScenario(7)
	if err != nil {
		t.Fatal(err)
	}
	geom := sc.Geometry()
	lo, hi := geom.islBoundsFor(0, 0, 1)
	if hi-lo > 1e-9 {
		t.Fatalf("intra-plane bounds not degenerate: [%v,%v]", lo, hi)
	}
}

// TestCorruptedLinkCaught injects one bad edge — a GSL rewired to a
// satellite far below the terminal's horizon, keeping the stale delay — and
// requires at least three distinct invariant classes to flag it. This is the
// detection-power acceptance test: a checker that only catches a corruption
// one way is one bug away from catching it zero ways.
func TestCorruptedLinkCaught(t *testing.T) {
	sc, err := RandomScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	geom := sc.Geometry()
	n := buildAt(t, sc, 0)

	// Pick the first GSL and a satellite well below its terminal's horizon.
	gsl := -1
	for li, l := range n.Links {
		if l.Kind == graph.LinkGSL {
			gsl = li
			break
		}
	}
	if gsl < 0 {
		t.Fatal("scenario has no GSLs")
	}
	term, sat := n.Links[gsl].A, n.Links[gsl].B
	if !n.IsGroundSide(term) {
		term, sat = sat, term
	}
	badSat := int32(-1)
	for s := int32(0); s < int32(n.NumSat); s++ {
		if geo.Elevation(n.Pos[term], n.Pos[s]) < -30 {
			badSat = s
			break
		}
	}
	if badSat < 0 {
		t.Fatal("no below-horizon satellite found")
	}

	var clean Report
	geom.CheckNetwork(&clean, n)
	if !clean.OK() {
		t.Fatalf("pre-corruption graph not clean: %s", clean.Summary())
	}

	count := 0
	n.RewriteLinks(func(l graph.Link) (graph.Link, bool) {
		if count == gsl {
			l.A, l.B = term, badSat // stale OneWayMs now also wrong
		}
		count++
		return l, true
	})

	var r Report
	geom.CheckNetwork(&r, n)
	if r.OK() {
		t.Fatal("corrupted link not detected")
	}
	for _, c := range []Class{ClassGSLElevation, ClassGSLRange, ClassLinkDelay} {
		if r.Count(c) == 0 {
			t.Errorf("class %s did not fire", c)
		}
	}
	if got := len(r.Classes()); got < 3 {
		t.Fatalf("corruption caught by %d classes (%v), want >= 3", got, r.Classes())
	}
	_ = sat
}

// TestPathChecksCatchFabrications verifies the path oracle rejects
// hand-broken paths of each flavor.
func TestPathChecksCatchFabrications(t *testing.T) {
	sc, err := RandomScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	n := buildAt(t, sc, 0)
	var src, dst int32
	var p graph.Path
	found := false
	for _, pair := range sc.Pairs {
		src, dst = n.CityNode(pair[0]), n.CityNode(pair[1])
		if got, ok := n.ShortestPath(src, dst); ok && got.Hops() >= 2 {
			p, found = got, true
			break
		}
	}
	if !found {
		t.Skip("no multi-hop connected pair in this scenario")
	}

	var clean Report
	CheckPath(&clean, n, src, dst, p)
	if !clean.OK() {
		t.Fatalf("genuine shortest path rejected: %s", clean.Summary())
	}

	cases := []struct {
		name  string
		class Class
		mutat func(graph.Path) graph.Path
	}{
		{"wrong endpoint", ClassPathContinuity, func(p graph.Path) graph.Path {
			p.Nodes = append([]int32(nil), p.Nodes...)
			p.Nodes[len(p.Nodes)-1] = src
			return p
		}},
		{"phantom link", ClassPathContinuity, func(p graph.Path) graph.Path {
			p.Links = append([]int32(nil), p.Links...)
			p.Links[0] = int32(len(n.Links)) + 7
			return p
		}},
		{"disjoint hop", ClassPathContinuity, func(p graph.Path) graph.Path {
			p.Links = append([]int32(nil), p.Links...)
			p.Links[0], p.Links[len(p.Links)-1] = p.Links[len(p.Links)-1], p.Links[0]
			return p
		}},
		{"understated delay", ClassLatencyBound, func(p graph.Path) graph.Path {
			p.OneWayMs = p.OneWayMs / 1e6
			return p
		}},
	}
	for _, tc := range cases {
		var r Report
		CheckPath(&r, n, src, dst, tc.mutat(p))
		if r.Count(tc.class) == 0 {
			t.Errorf("%s: class %s did not fire (%s)", tc.name, tc.class, r.Summary())
		}
	}
}

func TestReportAccounting(t *testing.T) {
	var r Report
	if !r.OK() || r.Total() != 0 {
		t.Fatal("zero report not clean")
	}
	r.Checked("links", 3)
	r.SetContext("t+60s", "hybrid")
	for i := 0; i < maxSamplesPerClass+10; i++ {
		r.Violatef(ClassFlow, "violation %d", i)
	}
	r.Violatef(ClassGraphShape, "one-off")
	if r.OK() {
		t.Fatal("report with violations claims OK")
	}
	if got := r.Count(ClassFlow); got != maxSamplesPerClass+10 {
		t.Fatalf("count %d, want %d", got, maxSamplesPerClass+10)
	}
	if got := len(r.Violations()); got != maxSamplesPerClass+1 {
		t.Fatalf("retained %d samples, want %d", got, maxSamplesPerClass+1)
	}
	if r.Total() != maxSamplesPerClass+11 {
		t.Fatalf("total %d", r.Total())
	}
	if cs := r.Classes(); len(cs) != 2 || cs[0] != ClassFlow || cs[1] != ClassGraphShape {
		t.Fatalf("classes %v", cs)
	}
	raw, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"ok":false`, `"snapshot":"t+60s"`, `"mode":"hybrid"`, `"flow-maxmin":30`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s in %s", want, s)
		}
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := RandomScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Const.Size() != b.Const.Size() || len(a.Pairs) != len(b.Pairs) ||
		len(a.Seg.Cities) != len(b.Seg.Cities) {
		t.Fatal("same seed produced different scenarios")
	}
	na, nb := buildAt(t, a, 0), buildAt(t, b, 0)
	if na.N() != nb.N() || len(na.Links) != len(nb.Links) {
		t.Fatalf("same seed produced different graphs: %d/%d nodes, %d/%d links",
			na.N(), nb.N(), len(na.Links), len(nb.Links))
	}
}
