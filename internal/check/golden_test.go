package check

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenPair is one city pair's routing outcome in the fixture.
type goldenPair struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Hops     int     `json:"hops"`
	OneWayMs float64 `json:"oneWayMs"`
}

type goldenSnapshot struct {
	OffsetSec int          `json:"offsetSec"`
	Nodes     int          `json:"nodes"`
	GSLs      int          `json:"gsls"`
	ISLs      int          `json:"isls"`
	Pairs     []goldenPair `json:"pairs"`
}

// TestGoldenMini4x4 pins the full pipeline — propagation, graph build,
// routing — on a 4×4 mini-constellation to a canned fixture. Run with
// -update to regenerate testdata/mini4x4.json after an intentional change;
// any unintentional drift (propagator, builder ordering, Dijkstra
// tie-break, delay arithmetic) fails the diff.
func TestGoldenMini4x4(t *testing.T) {
	sh := constellation.Shell{
		Name: "mini", Planes: 4, SatsPerPlane: 4,
		AltitudeKm: 1400, InclinationDeg: 58, WalkerF: 1,
		RAANSpreadDeg: 360, MinElevationDeg: 5,
	}
	c, err := constellation.New([]constellation.Shell{sh}, constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	cities := []ground.City{
		{Name: "Tokyo", Lat: 35.68, Lon: 139.69, Pop: 37},
		{Name: "New York", Lat: 40.71, Lon: -74.01, Pop: 19},
		{Name: "London", Lat: 51.51, Lon: -0.13, Pop: 9},
		{Name: "Sydney", Lat: -33.87, Lon: 151.21, Pop: 5},
	}
	seg, err := ground.NewSegment(cities, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBuilder(c, seg, nil,
		graph.BuildOptions{ISL: true, GSLCapGbps: 20, ISLCapGbps: 100})
	if err != nil {
		t.Fatal(err)
	}

	var snaps []goldenSnapshot
	for _, off := range []int{0, 120, 3600} {
		n := b.At(geo.Epoch.Add(time.Duration(off) * time.Second))
		gs := goldenSnapshot{OffsetSec: off, Nodes: n.N()}
		for _, l := range n.Links {
			switch l.Kind {
			case graph.LinkGSL:
				gs.GSLs++
			case graph.LinkISL:
				gs.ISLs++
			}
		}
		for a := 0; a < len(cities); a++ {
			for d := a + 1; d < len(cities); d++ {
				p, ok := n.ShortestPath(n.CityNode(a), n.CityNode(d))
				if !ok {
					continue
				}
				gs.Pairs = append(gs.Pairs, goldenPair{
					Src: cities[a].Name, Dst: cities[d].Name,
					Hops: p.Hops(), OneWayMs: p.OneWayMs,
				})
			}
		}
		snaps = append(snaps, gs)
	}
	got, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "mini4x4.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch for %s; rerun with -update if the change is intentional.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}
