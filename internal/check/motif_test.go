package check

import (
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/topo"
)

// TestMotifISLBounds holds every topology motif to the per-relation
// closed-form ISL length bounds, densely over time, on a delta + star
// two-shell constellation. The bounds derivation never assumed the +Grid
// link set — only the (ΔΩ, Δu) relation of a pair — so diagonal offsets,
// ladder rings, nearest-neighbour matchings and demand-aware express links
// must all stay inside the same analytic envelope. Epoch-aware motifs are
// re-placed at every sampled instant, so the links checked are the ones the
// motif would actually fly at that time.
func TestMotifISLBounds(t *testing.T) {
	shells := []constellation.Shell{constellation.TestShell(), constellation.PolarShell()}
	for _, id := range topo.IDs() {
		m, err := topo.Build(id, topo.Config{})
		if err != nil {
			t.Fatalf("%s: build: %v", id, err)
		}
		c, err := constellation.New(shells, topo.Option(m))
		if err != nil {
			t.Fatalf("%s: constellation: %v", id, err)
		}
		geom := NewGeometry(c, 0)
		for k := 0; k < 12; k++ {
			at := geo.Epoch.Add(time.Duration(k) * 11 * time.Minute)
			links := topo.LinksAt(m, c, at)
			if len(links) == 0 {
				t.Fatalf("%s: no links at t%d", id, k)
			}
			snap := c.SnapshotAt(at)
			for _, l := range links {
				sa, sb := c.Sats[l.A], c.Sats[l.B]
				if sa.ShellIndex != sb.ShellIndex {
					t.Fatalf("%s: cross-shell ISL %v", id, l)
				}
				lo, hi := geom.islBoundsFor(sa.ShellIndex, sb.Plane-sa.Plane, sb.Slot-sa.Slot)
				d := snap.Pos[l.A].Distance(snap.Pos[l.B])
				if d < lo-geom.ISLSlackKm || d > hi+geom.ISLSlackKm {
					t.Errorf("%s: ISL %d-%d at t%d: length %.6f outside [%.6f,%.6f]",
						id, l.A, l.B, k, d, lo, hi)
				}
			}
		}
	}
}
