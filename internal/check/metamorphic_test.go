package check

import (
	"math"
	"sort"
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
	"leosim/internal/orbit"
)

// Metamorphic tests: transform the whole system in a way physics says is a
// symmetry, and require the observable outputs to be unchanged. These need
// no reference values at all — the system is compared against itself.

func testShell(offsetDeg float64) constellation.Shell {
	return constellation.Shell{
		Name: "meta", Planes: 8, SatsPerPlane: 8,
		AltitudeKm: 780, InclinationDeg: 60, WalkerF: 3,
		RAANSpreadDeg: 360, RAANOffsetDeg: offsetDeg, MinElevationDeg: 12,
	}
}

var testCities = []ground.City{
	{Name: "Tokyo", Lat: 35.68, Lon: 139.69, Pop: 37},
	{Name: "New York", Lat: 40.71, Lon: -74.01, Pop: 19},
	{Name: "London", Lat: 51.51, Lon: -0.13, Pop: 9},
	{Name: "São Paulo", Lat: -23.55, Lon: -46.63, Pop: 22},
	{Name: "Sydney", Lat: -33.87, Lon: 151.21, Pop: 5},
	{Name: "Lagos", Lat: 6.52, Lon: 3.38, Pop: 13},
}

// rotatedSystem builds the snapshot graph of the test system with the whole
// geometry — every orbital plane and every city — rotated east by deltaDeg.
func rotatedSystem(t *testing.T, deltaDeg float64, at time.Time) *graph.Network {
	t.Helper()
	c, err := constellation.New([]constellation.Shell{testShell(deltaDeg)},
		constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	cities := make([]ground.City, len(testCities))
	copy(cities, testCities)
	for i := range cities {
		lon := cities[i].Lon + deltaDeg
		for lon >= 180 {
			lon -= 360
		}
		cities[i].Lon = lon
	}
	seg, err := ground.NewSegment(cities, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBuilder(c, seg, nil,
		graph.BuildOptions{ISL: true, GSLCapGbps: 20, ISLCapGbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	return b.At(at)
}

// TestRotationInvariance rotates the entire system — RAAN of every plane and
// longitude of every city — by the same angle. That is a rigid rotation of
// all positions about the Earth's axis, so every pairwise distance, and
// therefore every shortest-path latency, must be preserved (up to
// floating-point rotation noise).
func TestRotationInvariance(t *testing.T) {
	at := geo.Epoch.Add(23 * time.Minute)
	base := rotatedSystem(t, 0, at)
	for _, delta := range []float64{37.25, 180, 301.5} {
		rot := rotatedSystem(t, delta, at)
		if base.N() != rot.N() || len(base.Links) != len(rot.Links) {
			t.Fatalf("Δ=%v: topology changed: %d/%d nodes, %d/%d links",
				delta, base.N(), rot.N(), len(base.Links), len(rot.Links))
		}
		var got, want []float64
		for a := 0; a < len(testCities); a++ {
			for b := a + 1; b < len(testCities); b++ {
				if p, ok := base.ShortestPath(base.CityNode(a), base.CityNode(b)); ok {
					want = append(want, p.OneWayMs)
				}
				if p, ok := rot.ShortestPath(rot.CityNode(a), rot.CityNode(b)); ok {
					got = append(got, p.OneWayMs)
				}
			}
		}
		if len(got) != len(want) || len(want) == 0 {
			t.Fatalf("Δ=%v: reachability changed: %d vs %d pairs", delta, len(want), len(got))
		}
		sort.Float64s(got)
		sort.Float64s(want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("Δ=%v: latency[%d] %.9f ms vs %.9f ms", delta, i, got[i], want[i])
			}
		}
	}
}

// TestOrbitalPeriodShiftISLInvariance advances time by exactly one nodal
// revolution — the period of the argument of latitude under J2 (Kepler mean
// motion plus the secular mean-anomaly and perigee drifts). Every satellite
// returns to the same phase within its (precessed) plane, and since all
// planes of a shell precess at the same rate, every inter-satellite distance
// must be exactly what it was.
func TestOrbitalPeriodShiftISLInvariance(t *testing.T) {
	sh := testShell(0)
	c, err := constellation.New([]constellation.Shell{sh}, constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	el := orbit.Circular(sh.AltitudeKm, sh.InclinationDeg, 0, 0, geo.Epoch)
	n := el.MeanMotion()
	ratio := geo.EarthEquatorialRadius / el.SemiMajorKm
	ci := math.Cos(el.InclinationRad)
	mDot := 0.75 * orbit.J2 * ratio * ratio * n * (3*ci*ci - 1)
	uDot := n + mDot + el.ArgPerigeePrecessionRate()
	period := time.Duration(2 * math.Pi / uDot * float64(time.Second))

	t0 := geo.Epoch.Add(41 * time.Minute)
	s0 := c.SnapshotAt(t0)
	s1 := c.SnapshotAt(t0.Add(period))
	for _, l := range c.ISLs {
		d0 := constellation.ISLLengthKm(s0, l)
		d1 := constellation.ISLLengthKm(s1, l)
		if math.Abs(d0-d1) > 1e-4 {
			t.Fatalf("ISL %d-%d: %.9f km at t0, %.9f km one revolution later",
				l.A, l.B, d0, d1)
		}
	}
	// Guard against a vacuous pass: a quarter revolution later the
	// cross-plane links must NOT all be back at their t0 lengths.
	sq := c.SnapshotAt(t0.Add(period / 4))
	moved := false
	for _, l := range c.ISLs {
		if math.Abs(constellation.ISLLengthKm(s0, l)-constellation.ISLLengthKm(sq, l)) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no ISL length changed over a quarter revolution; test is vacuous")
	}
}
