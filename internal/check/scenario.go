package check

import (
	"fmt"
	"math/rand"

	"leosim/internal/constellation"
	"leosim/internal/graph"
	"leosim/internal/ground"
)

// Scenario is a deterministically generated miniature system — a small
// random Walker constellation, a handful of real cities, and traffic pairs —
// sized so property tests and fuzzers can sweep many of them quickly. The
// same seed always yields the same scenario.
type Scenario struct {
	Seed  int64
	Const *constellation.Constellation
	Seg   *ground.Segment
	Opts  graph.BuildOptions
	// Pairs are city-index traffic pairs (indices into Seg.Cities).
	Pairs [][2]int
}

// RandomScenario generates the miniature system for a seed. Shell parameters
// are drawn from ranges wide enough to exercise polar stars, Walker deltas,
// seam phasing and multi-shell constellations, but small enough (≤ ~120
// satellites) that building and routing a snapshot takes microseconds.
func RandomScenario(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))

	nShells := 1 + rng.Intn(2)
	shells := make([]constellation.Shell, nShells)
	for i := range shells {
		planes := 2 + rng.Intn(5)   // 2..6
		perPlane := 3 + rng.Intn(6) // 3..8
		spread := 360.0
		if rng.Intn(3) == 0 {
			spread = 180 // polar star
		}
		shells[i] = constellation.Shell{
			Name:            fmt.Sprintf("rand-%d-%d", seed, i),
			Planes:          planes,
			SatsPerPlane:    perPlane,
			AltitudeKm:      500 + rng.Float64()*900,
			InclinationDeg:  35 + rng.Float64()*63, // 35..98 covers inclined + sun-sync-ish
			WalkerF:         rng.Intn(planes + 1),
			RAANSpreadDeg:   spread,
			RAANOffsetDeg:   rng.Float64() * 360,
			MinElevationDeg: 15 + rng.Float64()*25,
		}
	}
	c, err := constellation.New(shells, constellation.WithISLs())
	if err != nil {
		return nil, err
	}

	all, err := ground.Cities(40)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(len(all))
	nCities := 5 + rng.Intn(8)
	cities := make([]ground.City, 0, nCities)
	for _, ci := range perm[:nCities] {
		cities = append(cities, all[ci])
	}
	seg, err := ground.NewSegment(cities, 0, 0)
	if err != nil {
		return nil, err
	}

	sc := &Scenario{
		Seed:  seed,
		Const: c,
		Seg:   seg,
		Opts:  graph.BuildOptions{ISL: true, GSLCapGbps: 20, ISLCapGbps: 100},
	}
	nPairs := 4 + rng.Intn(8)
	for p := 0; p < nPairs; p++ {
		a, b := rng.Intn(nCities), rng.Intn(nCities)
		if a == b {
			continue
		}
		sc.Pairs = append(sc.Pairs, [2]int{a, b})
	}
	return sc, nil
}

// Builder returns a snapshot-graph builder for the scenario.
func (sc *Scenario) Builder() (*graph.Builder, error) {
	return graph.NewBuilder(sc.Const, sc.Seg, nil, sc.Opts)
}

// Geometry returns the checking ground truth matched to the scenario.
// Sparse random shells have intra-plane chords that legitimately pass
// through the Earth, so the atmosphere floor stays disabled.
func (sc *Scenario) Geometry() *Geometry {
	return NewGeometry(sc.Const, sc.Opts.MinElevationOverrideDeg)
}
