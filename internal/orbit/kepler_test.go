package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"leosim/internal/geo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveKepler(t *testing.T) {
	// e=0: E == M.
	if e := SolveKepler(1.234, 0); e != 1.234 {
		t.Errorf("circular E = %v, want 1.234", e)
	}
	// Residual must vanish for a range of eccentricities and anomalies.
	for _, ecc := range []float64{0, 1e-4, 0.01, 0.1, 0.5, 0.9} {
		for m := 0.0; m < 2*math.Pi; m += 0.37 {
			e := SolveKepler(m, ecc)
			res := e - ecc*math.Sin(e) - m
			// SolveKepler normalizes M into [0,2π); compare modulo 2π.
			res = math.Mod(res, 2*math.Pi)
			if math.Abs(res) > 1e-10 && math.Abs(math.Abs(res)-2*math.Pi) > 1e-10 {
				t.Errorf("residual %v for e=%v M=%v", res, ecc, m)
			}
		}
	}
}

func TestSolveKeplerProperty(t *testing.T) {
	f := func(m, e float64) bool {
		m = math.Mod(math.Abs(m), 2*math.Pi)
		e = math.Mod(math.Abs(e), 0.95)
		if math.IsNaN(m) || math.IsNaN(e) {
			return true
		}
		ea := SolveKepler(m, e)
		return math.Abs(ea-e*math.Sin(ea)-m) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrueAnomalyCircular(t *testing.T) {
	for ea := -3.0; ea < 3; ea += 0.5 {
		if nu := TrueAnomaly(ea, 0); !almostEq(nu, math.Atan2(math.Sin(ea), math.Cos(ea)), 1e-12) {
			t.Errorf("circular true anomaly %v != E %v", nu, ea)
		}
	}
}

func TestElementsBasics(t *testing.T) {
	el := Circular(550, 53, 10, 20, geo.Epoch)
	if err := el.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !almostEq(el.AltitudeKm(), 550, 1e-9) {
		t.Errorf("altitude = %v", el.AltitudeKm())
	}
	// Orbital period at 550 km is about 95.6 minutes (~5737 s).
	if p := el.Period().Seconds(); !almostEq(p, 5737, 10) {
		t.Errorf("period = %v s, want ≈5737", p)
	}
	// "each with an orbital period of ~100 minutes" (§2).
	if p := el.Period().Minutes(); p < 90 || p > 105 {
		t.Errorf("period = %v min, want ~100", p)
	}
}

func TestElementsValidate(t *testing.T) {
	bad := Elements{SemiMajorKm: geo.EarthRadius + 100, Eccentricity: 0.5}
	if bad.Validate() == nil {
		t.Errorf("perigee below surface must fail validation")
	}
	if (Elements{SemiMajorKm: 7000, Eccentricity: 1.5}).Validate() == nil {
		t.Errorf("hyperbolic eccentricity must fail validation")
	}
	if (Elements{SemiMajorKm: 7000, InclinationRad: 4}).Validate() == nil {
		t.Errorf("inclination > π must fail validation")
	}
}

func TestNodePrecessionStarlink(t *testing.T) {
	// J2 node regression for 550 km / 53° is ≈ −4.5°/day.
	el := Circular(550, 53, 0, 0, geo.Epoch)
	perDay := el.NodePrecessionRate() * 86400 * geo.Rad
	if !almostEq(perDay, -4.5, 0.1) {
		t.Errorf("node precession = %v°/day, want ≈ −4.5", perDay)
	}
	// Polar orbits do not precess; retrograde precess forward.
	polar := Circular(550, 90, 0, 0, geo.Epoch)
	if r := polar.NodePrecessionRate(); math.Abs(r) > 1e-18 {
		t.Errorf("polar precession = %v, want 0", r)
	}
	retro := Circular(550, 97.6, 0, 0, geo.Epoch)
	if retro.NodePrecessionRate() <= 0 {
		t.Errorf("retrograde orbit should precess eastward")
	}
}

func TestKeplerPropagatorCircularGeometry(t *testing.T) {
	el := Circular(550, 53, 30, 0, geo.Epoch)
	k := NewKepler(el)
	for m := 0; m <= 100; m += 5 {
		at := geo.Epoch.Add(time.Duration(m) * time.Minute)
		r := k.PositionECI(at).Norm()
		if !almostEq(r, el.SemiMajorKm, 0.5) {
			t.Fatalf("radius at %dmin = %v, want %v", m, r, el.SemiMajorKm)
		}
		// Latitude never exceeds inclination for a circular orbit.
		lat := geo.FromECEF(k.PositionECEF(at)).Lat
		if math.Abs(lat) > 53.01 {
			t.Fatalf("latitude %v exceeds inclination", lat)
		}
	}
}

func TestKeplerPropagatorPeriod(t *testing.T) {
	el := Circular(550, 53, 0, 0, geo.Epoch)
	k := &KeplerPropagator{El: el} // no J2 so pure two-body period
	p0 := k.PositionECI(geo.Epoch)
	after := geo.Epoch.Add(el.Period())
	p1 := k.PositionECI(after)
	if d := p0.Distance(p1); d > 10 {
		t.Errorf("position after one period moved %v km, want < 10", d)
	}
}

func TestKeplerPropagatorVelocity(t *testing.T) {
	el := Circular(550, 53, 0, 0, geo.Epoch)
	k := NewKepler(el)
	_, v := k.PosVelECI(geo.Epoch)
	// Circular speed v = sqrt(mu/a) ≈ 7.59 km/s at 550 km.
	want := math.Sqrt(geo.EarthMu / el.SemiMajorKm)
	if !almostEq(v.Norm(), want, 0.01) {
		t.Errorf("speed = %v, want %v", v.Norm(), want)
	}
	// Velocity is orthogonal to position for a circular orbit.
	p, v := k.PosVelECI(geo.Epoch.Add(17 * time.Minute))
	if ang := p.AngleTo(v); !almostEq(ang, math.Pi/2, 1e-6) {
		t.Errorf("r·v angle = %v, want π/2", ang)
	}
}

func TestKeplerJ2NodeDrift(t *testing.T) {
	// Over a day, the J2-secular propagator must regress the node by the
	// analytic rate, visible as a longitude shift of the ascending-node
	// crossing relative to the non-J2 run.
	el := Circular(550, 53, 0, 0, geo.Epoch)
	withJ2 := NewKepler(el)
	noJ2 := &KeplerPropagator{El: el}
	day := geo.Epoch.Add(24 * time.Hour)
	d := withJ2.PositionECI(day).Distance(noJ2.PositionECI(day))
	// −5°/day at orbit radius ≈ 600 km displacement; J2 also changes the
	// in-track rate, so just require a substantial, bounded difference.
	if d < 100 || d > 4000 {
		t.Errorf("J2 displacement after a day = %v km, want 100–4000", d)
	}
}

func TestEllipticalOrbitRadiusRange(t *testing.T) {
	el := Elements{
		SemiMajorKm:    geo.EarthRadius + 800,
		Eccentricity:   0.02,
		InclinationRad: 60 * geo.Deg,
		Epoch:          geo.Epoch,
	}
	k := &KeplerPropagator{El: el}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for m := 0; m < 110; m++ {
		r := k.PositionECI(geo.Epoch.Add(time.Duration(m) * time.Minute)).Norm()
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	peri := el.SemiMajorKm * (1 - el.Eccentricity)
	apo := el.SemiMajorKm * (1 + el.Eccentricity)
	if !almostEq(minR, peri, 2) || !almostEq(maxR, apo, 2) {
		t.Errorf("radius range [%v,%v], want [%v,%v]", minR, maxR, peri, apo)
	}
}

func TestSubsatellitePoint(t *testing.T) {
	el := Circular(550, 53, 0, 0, geo.Epoch)
	k := NewKepler(el)
	p := SubsatellitePoint(k, geo.Epoch)
	if !almostEq(p.Alt, 550, 1) {
		t.Errorf("subsatellite altitude = %v", p.Alt)
	}
}

func TestGroundTrackCoversInclinationBand(t *testing.T) {
	el := Circular(550, 53, 0, 0, geo.Epoch)
	k := NewKepler(el)
	maxLat := 0.0
	for m := 0; m < 100; m++ {
		lat := math.Abs(SubsatellitePoint(k, geo.Epoch.Add(time.Duration(m)*time.Minute)).Lat)
		maxLat = math.Max(maxLat, lat)
	}
	if !almostEq(maxLat, 53, 1.5) {
		t.Errorf("max |lat| over an orbit = %v, want ≈ 53", maxLat)
	}
}
