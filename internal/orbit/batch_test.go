package orbit

import (
	"math"
	"testing"
	"time"

	"leosim/internal/geo"
)

// TestKeplerBatchBitIdentical: the batch path must reproduce the scalar
// PositionECI→ECIToECEF pipeline bit for bit (up to the sign of exact
// zeros), across circular and eccentric orbits, J2 on and off, and plane
// groupings that exercise the matrix-reuse path.
func TestKeplerBatchBitIdentical(t *testing.T) {
	epoch := geo.Epoch
	var props []Propagator
	for plane := 0; plane < 6; plane++ {
		for slot := 0; slot < 8; slot++ {
			el := Circular(550, 53, float64(plane)*60, float64(slot)*45, epoch)
			props = append(props, NewKepler(el))
		}
	}
	// Eccentric and non-secular stragglers break the plane runs.
	ecc := Elements{SemiMajorKm: 7000, Eccentricity: 0.02, InclinationRad: 1.1,
		RAANRad: 0.4, ArgPerigeeRad: 0.7, MeanAnomalyRad: 2.2, Epoch: epoch}
	props = append(props, NewKepler(ecc))
	props = append(props, &KeplerPropagator{El: Circular(1200, 80, 10, 20, epoch)})

	b, ok := NewKeplerBatch(props)
	if !ok {
		t.Fatal("all-Kepler fleet should batch")
	}
	dst := make([]geo.Vec3, len(props))
	for _, dt := range []time.Duration{0, time.Second, time.Minute, 7 * time.Hour, 100 * 24 * time.Hour} {
		tt := epoch.Add(dt)
		b.PositionsECEF(tt, dst)
		for i, p := range props {
			want := geo.ECIToECEF(p.PositionECI(tt), tt)
			got := dst[i]
			if !bitEqual(got.X, want.X) || !bitEqual(got.Y, want.Y) || !bitEqual(got.Z, want.Z) {
				t.Fatalf("sat %d at +%v: batch %v != scalar %v", i, dt, got, want)
			}
		}
	}
}

// bitEqual treats +0 and −0 as equal (the batch drops products with the
// perifocal zero Z component, which can only flip an exact zero's sign) and
// requires exact bits otherwise.
func bitEqual(a, b float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestKeplerBatchRange: chunked evaluation (as the parallel position fan-out
// uses) must agree with whole-fleet evaluation.
func TestKeplerBatchRange(t *testing.T) {
	epoch := geo.Epoch
	var props []Propagator
	for plane := 0; plane < 4; plane++ {
		for slot := 0; slot < 5; slot++ {
			props = append(props, NewKepler(Circular(600, 70, float64(plane)*90, float64(slot)*72, epoch)))
		}
	}
	b, _ := NewKeplerBatch(props)
	tt := epoch.Add(90 * time.Minute)
	whole := make([]geo.Vec3, len(props))
	b.PositionsECEF(tt, whole)
	chunked := make([]geo.Vec3, len(props))
	for lo := 0; lo < len(props); lo += 7 {
		hi := lo + 7
		if hi > len(props) {
			hi = len(props)
		}
		b.PositionsECEFRange(tt, lo, hi, chunked)
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("sat %d: chunked %v != whole %v", i, chunked[i], whole[i])
		}
	}
}

// TestKeplerBatchRejectsSGP4: mixed fleets fall back to the scalar path.
func TestKeplerBatchRejectsSGP4(t *testing.T) {
	el := Circular(550, 53, 0, 0, geo.Epoch)
	s, err := NewSGP4(TLE{SatNum: 1, Epoch: geo.Epoch, InclinationDeg: 53,
		Eccentricity: 0.0001, MeanMotion: 15.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewKeplerBatch([]Propagator{NewKepler(el), s}); ok {
		t.Fatal("SGP4 fleet must not batch")
	}
}
