package orbit_test

import (
	"fmt"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

// ExampleNewSGP4 parses the canonical ISS TLE and propagates it.
func ExampleNewSGP4() {
	tle, err := orbit.ParseTLE(
		"1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
		"2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537")
	if err != nil {
		panic(err)
	}
	prop, err := orbit.NewSGP4(tle)
	if err != nil {
		panic(err)
	}
	r, v, err := prop.PosVelECI(tle.Epoch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("altitude %.0f km, speed %.2f km/s\n", r.Norm()-6378.135, v.Norm())
	// Output: altitude 342 km, speed 7.70 km/s
}

// ExampleCircular builds a Starlink-like orbit and reads its ground track.
func ExampleCircular() {
	el := orbit.Circular(550, 53, 0, 0, geo.Epoch)
	prop := orbit.NewKepler(el)
	fmt.Printf("period %.1f min\n", el.Period().Minutes())
	p := orbit.SubsatellitePoint(prop, geo.Epoch.Add(10*time.Minute))
	fmt.Printf("northbound after 10 min: %v\n", p.Lat > 20 && p.Lat < 45)
	// Output:
	// period 95.5 min
	// northbound after 10 min: true
}
