package orbit

import (
	"math"
	"testing"
	"time"

	"leosim/internal/geo"
)

func issSGP4(t *testing.T) *SGP4 {
	t.Helper()
	tle, err := ParseTLE(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSGP4ISSAtEpoch(t *testing.T) {
	s := issSGP4(t)
	r, v, err := s.PosVelECI(s.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	// 2008-era ISS: ~350 km circular orbit, speed ~7.7 km/s.
	alt := r.Norm() - sgp4Re
	if alt < 330 || alt > 370 {
		t.Errorf("altitude at epoch = %v km, want ≈350", alt)
	}
	if sp := v.Norm(); sp < 7.6 || sp < 7.0 || sp > 7.8 {
		t.Errorf("speed = %v km/s, want ≈7.7", sp)
	}
	// Velocity nearly orthogonal to position for the near-circular orbit.
	if ang := r.AngleTo(v) * geo.Rad; math.Abs(ang-90) > 0.2 {
		t.Errorf("r·v angle = %v°, want ≈90°", ang)
	}
}

func TestSGP4RadiusStaysNearCircular(t *testing.T) {
	s := issSGP4(t)
	for m := 0; m <= 1440; m += 15 {
		at := s.Epoch().Add(time.Duration(m) * time.Minute)
		r, _, err := s.PosVelECI(at)
		if err != nil {
			t.Fatalf("propagate %dmin: %v", m, err)
		}
		alt := r.Norm() - sgp4Re
		if alt < 320 || alt > 380 {
			t.Fatalf("altitude at %dmin = %v km", m, alt)
		}
	}
}

func TestSGP4InclinationBound(t *testing.T) {
	s := issSGP4(t)
	for m := 0; m <= 200; m += 2 {
		at := s.Epoch().Add(time.Duration(m) * time.Minute)
		p := geo.FromECEF(s.PositionECEF(at))
		if math.Abs(p.Lat) > 51.8 {
			t.Fatalf("latitude %v exceeds inclination 51.64 (+margin)", p.Lat)
		}
	}
}

func TestSGP4PeriodMatchesMeanMotion(t *testing.T) {
	s := issSGP4(t)
	// Find two successive ascending Equator crossings (Z sign change with
	// positive Z velocity) and compare the gap against 1440/n minutes.
	wantMin := 1440.0 / 15.72125391
	var crossings []float64
	prevZ := math.NaN()
	for m := 0.0; m <= 200 && len(crossings) < 2; m += 0.05 {
		r, _, err := s.posVelAt(m)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(prevZ) && prevZ < 0 && r.Z >= 0 {
			crossings = append(crossings, m)
		}
		prevZ = r.Z
	}
	if len(crossings) < 2 {
		t.Fatal("did not observe two ascending node crossings")
	}
	period := crossings[1] - crossings[0]
	// The nodal period differs from the Keplerian period by the J2 nodal
	// terms (< 0.1 min here).
	if math.Abs(period-wantMin) > 0.2 {
		t.Errorf("nodal period = %v min, want ≈%v", period, wantMin)
	}
}

func TestSGP4NodeRegressionMatchesJ2(t *testing.T) {
	// The RAAN drift produced by SGP4 must match the analytic J2 rate.
	tle := TLE{
		SatNum:         1,
		Epoch:          geo.Epoch,
		InclinationDeg: 53,
		Eccentricity:   0.0001,
		MeanMotion:     15.05, // ≈550 km
	}
	s, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	analytic := tle.Elements().NodePrecessionRate() * 86400 * geo.Rad // deg/day
	got := s.nodedot * 1440 * geo.Rad                                 // rad/min → deg/day
	if math.Abs(got-analytic) > 0.15 {
		t.Errorf("SGP4 node rate %v°/day vs analytic J2 %v°/day", got, analytic)
	}
}

func TestSGP4AgreesWithKeplerShortTerm(t *testing.T) {
	// Over tens of minutes, SGP4 and the J2-secular Kepler propagator
	// should agree to within the J2 short-period amplitude (~10–20 km).
	tle := TLE{
		SatNum:         7,
		Epoch:          geo.Epoch,
		InclinationDeg: 53,
		RAANDeg:        42,
		Eccentricity:   0.0001,
		ArgPerigeeDeg:  0,
		MeanAnomalyDeg: 0,
		MeanMotion:     15.05,
	}
	s, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKepler(tle.Elements())
	for m := 0; m <= 60; m += 10 {
		at := geo.Epoch.Add(time.Duration(m) * time.Minute)
		rs, _, err := s.PosVelECI(at)
		if err != nil {
			t.Fatal(err)
		}
		rk := k.PositionECI(at)
		if d := rs.Distance(rk); d > 60 {
			t.Fatalf("SGP4 vs Kepler at %dmin: %v km apart", m, d)
		}
	}
}

func TestSGP4RejectsDeepSpace(t *testing.T) {
	gso := TLE{SatNum: 2, Epoch: geo.Epoch, MeanMotion: 1.0027} // geosynchronous
	if _, err := NewSGP4(gso); err == nil {
		t.Errorf("deep-space orbit must be rejected")
	}
}

func TestSGP4RejectsBadElements(t *testing.T) {
	if _, err := NewSGP4(TLE{MeanMotion: 0}); err == nil {
		t.Errorf("zero mean motion must be rejected")
	}
	if _, err := NewSGP4(TLE{MeanMotion: 15, Eccentricity: 1.2}); err == nil {
		t.Errorf("eccentricity ≥ 1 must be rejected")
	}
}

func TestSGP4DetectsDecay(t *testing.T) {
	// A very low orbit with a huge drag term decays within days.
	tle := TLE{
		SatNum:         3,
		Epoch:          geo.Epoch,
		InclinationDeg: 53,
		Eccentricity:   0.001,
		MeanMotion:     16.4, // ≈180 km altitude
		BStar:          0.1,
	}
	s, err := NewSGP4(tle)
	if err != nil {
		t.Fatal(err)
	}
	decayed := false
	for d := 0; d <= 30; d++ {
		_, _, err := s.PosVelECI(geo.Epoch.Add(time.Duration(d) * 24 * time.Hour))
		if err != nil {
			decayed = true
			break
		}
	}
	if !decayed {
		t.Errorf("expected decay error within 30 days for extreme drag")
	}
	// PositionECI degrades to a zero vector instead of panicking.
	if p := s.PositionECI(geo.Epoch.Add(300 * 24 * time.Hour)); !p.IsZero() {
		// decay may or may not trigger exactly here; only check no panic
		_ = p
	}
}

func TestSGP4Deterministic(t *testing.T) {
	s1 := issSGP4(t)
	s2 := issSGP4(t)
	at := s1.Epoch().Add(97 * time.Minute)
	p1, _, _ := s1.PosVelECI(at)
	p2, _, _ := s2.PosVelECI(at)
	if p1 != p2 {
		t.Errorf("SGP4 must be deterministic: %v vs %v", p1, p2)
	}
}
