// Package orbit implements the orbital-mechanics substrate of the simulator:
// classical Keplerian elements, a fast circular/J2 secular propagator used by
// the constellation experiments, a full SGP4 propagator ported from the
// standard Vallado reference implementation, and TLE parsing/formatting.
//
// Frames: propagators produce positions in an Earth-centered inertial (ECI)
// frame; internal/geo converts to Earth-fixed coordinates via GMST. Units are
// kilometers, seconds and radians unless a name says otherwise.
package orbit

import (
	"fmt"
	"math"
	"time"

	"leosim/internal/geo"
)

// Elements are classical Keplerian orbital elements at a reference epoch.
type Elements struct {
	// SemiMajorKm is the semi-major axis in kilometers (Earth center).
	SemiMajorKm float64
	// Eccentricity in [0, 1).
	Eccentricity float64
	// InclinationRad is the inclination in radians.
	InclinationRad float64
	// RAANRad is the right ascension of the ascending node in radians.
	RAANRad float64
	// ArgPerigeeRad is the argument of perigee in radians.
	ArgPerigeeRad float64
	// MeanAnomalyRad is the mean anomaly at Epoch in radians.
	MeanAnomalyRad float64
	// Epoch is the reference time for MeanAnomalyRad and RAANRad.
	Epoch time.Time
}

// Circular builds the elements of a circular orbit at altitude altKm with the
// given inclination, RAAN and initial mean anomaly (all degrees), at epoch.
func Circular(altKm, incDeg, raanDeg, meanAnomDeg float64, epoch time.Time) Elements {
	return Elements{
		SemiMajorKm:    geo.EarthRadius + altKm,
		InclinationRad: incDeg * geo.Deg,
		RAANRad:        raanDeg * geo.Deg,
		MeanAnomalyRad: meanAnomDeg * geo.Deg,
		Epoch:          epoch,
	}
}

// MeanMotion returns the Keplerian mean motion n = sqrt(mu/a^3) in rad/s.
func (e Elements) MeanMotion() float64 {
	a := e.SemiMajorKm
	return math.Sqrt(geo.EarthMu / (a * a * a))
}

// Period returns the orbital period.
func (e Elements) Period() time.Duration {
	return time.Duration(2 * math.Pi / e.MeanMotion() * float64(time.Second))
}

// AltitudeKm returns the mean altitude above the spherical Earth surface.
func (e Elements) AltitudeKm() float64 { return e.SemiMajorKm - geo.EarthRadius }

// Validate checks that the elements describe a closed orbit above the
// surface.
func (e Elements) Validate() error {
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %v outside [0,1)", e.Eccentricity)
	}
	if peri := e.SemiMajorKm * (1 - e.Eccentricity); peri <= geo.EarthRadius {
		return fmt.Errorf("orbit: perigee radius %.1f km is below the surface", peri)
	}
	if e.InclinationRad < 0 || e.InclinationRad > math.Pi {
		return fmt.Errorf("orbit: inclination %v outside [0,π]", e.InclinationRad)
	}
	return nil
}

// J2 perturbation constant of the Earth's oblateness (WGS84).
const J2 = 1.08262668e-3

// NodePrecessionRate returns the secular rate of the RAAN in rad/s caused by
// the Earth's J2 oblateness:
//
//	dΩ/dt = -(3/2) · J2 · (Re/p)² · n · cos i,
//
// with Re the equatorial radius J2 is defined against. For the Starlink shell
// (550 km, 53°) this is about −4.5°/day, which over the simulated day moves
// satellites by hundreds of kilometers; the experiment propagator therefore
// applies it.
func (e Elements) NodePrecessionRate() float64 {
	p := e.SemiMajorKm * (1 - e.Eccentricity*e.Eccentricity)
	ratio := geo.EarthEquatorialRadius / p
	return -1.5 * J2 * ratio * ratio * e.MeanMotion() * math.Cos(e.InclinationRad)
}

// ArgPerigeePrecessionRate returns the secular J2 rate of the argument of
// perigee in rad/s:
//
//	dω/dt = (3/4) · J2 · (Re/p)² · n · (5·cos²i − 1).
func (e Elements) ArgPerigeePrecessionRate() float64 {
	p := e.SemiMajorKm * (1 - e.Eccentricity*e.Eccentricity)
	ratio := geo.EarthEquatorialRadius / p
	ci := math.Cos(e.InclinationRad)
	return 0.75 * J2 * ratio * ratio * e.MeanMotion() * (5*ci*ci - 1)
}
