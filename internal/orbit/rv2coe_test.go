package orbit

import (
	"math"
	"testing"
	"time"

	"leosim/internal/geo"
)

func TestElementsFromRVRoundTrip(t *testing.T) {
	// Propagate known elements, recover them from the state vector.
	cases := []Elements{
		Circular(550, 53, 40, 77, geo.Epoch),
		Circular(630, 51.9, 199, 12, geo.Epoch),
		{
			SemiMajorKm: geo.EarthRadius + 800, Eccentricity: 0.05,
			InclinationRad: 63.4 * geo.Deg, RAANRad: 1.1,
			ArgPerigeeRad: 2.2, MeanAnomalyRad: 0.7, Epoch: geo.Epoch,
		},
	}
	for ci, el := range cases {
		k := &KeplerPropagator{El: el} // pure two-body for exact round-trip
		at := geo.Epoch.Add(13 * time.Minute)
		r, v := k.PosVelECI(at)
		got, err := ElementsFromRV(r, v, at)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !almostEq(got.SemiMajorKm, el.SemiMajorKm, 1e-6*el.SemiMajorKm) {
			t.Errorf("case %d: a = %v, want %v", ci, got.SemiMajorKm, el.SemiMajorKm)
		}
		if !almostEq(got.Eccentricity, el.Eccentricity, 1e-8+1e-6) {
			t.Errorf("case %d: e = %v, want %v", ci, got.Eccentricity, el.Eccentricity)
		}
		if !almostEq(got.InclinationRad, el.InclinationRad, 1e-9) {
			t.Errorf("case %d: i = %v, want %v", ci, got.InclinationRad, el.InclinationRad)
		}
		if el.Eccentricity > 1e-4 {
			if !almostEq(got.RAANRad, el.RAANRad, 1e-7) {
				t.Errorf("case %d: Ω = %v, want %v", ci, got.RAANRad, el.RAANRad)
			}
			if !almostEq(got.ArgPerigeeRad, el.ArgPerigeeRad, 1e-5) {
				t.Errorf("case %d: ω = %v, want %v", ci, got.ArgPerigeeRad, el.ArgPerigeeRad)
			}
		}
		// Re-propagating the recovered elements reproduces the state.
		k2 := &KeplerPropagator{El: got}
		r2, v2 := k2.PosVelECI(at)
		if d := r.Distance(r2); d > 0.5 {
			t.Errorf("case %d: position re-propagation error %v km", ci, d)
		}
		if d := v.Distance(v2); d > 0.01 {
			t.Errorf("case %d: velocity re-propagation error %v km/s", ci, d)
		}
	}
}

func TestElementsFromRVOnSGP4Output(t *testing.T) {
	// Osculating elements recovered from SGP4 states must stay near the
	// TLE's mean elements (differences = periodic perturbations).
	s := issSGP4(t)
	for m := 0; m <= 90; m += 30 {
		at := s.Epoch().Add(time.Duration(m) * time.Minute)
		r, v, err := s.PosVelECI(at)
		if err != nil {
			t.Fatal(err)
		}
		el, err := ElementsFromRV(r, v, at)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(el.InclinationRad*geo.Rad, 51.64, 0.3) {
			t.Errorf("t=%dmin: osculating inclination %v", m, el.InclinationRad*geo.Rad)
		}
		if alt := el.AltitudeKm(); alt < 320 || alt > 380 {
			t.Errorf("t=%dmin: osculating mean altitude %v", m, alt)
		}
		if el.Eccentricity > 0.01 {
			t.Errorf("t=%dmin: osculating eccentricity %v", m, el.Eccentricity)
		}
	}
}

func TestElementsFromRVDegenerate(t *testing.T) {
	if _, err := ElementsFromRV(geo.Vec3{}, geo.Vec3{X: 7}, geo.Epoch); err == nil {
		t.Errorf("zero position must fail")
	}
	// Radial trajectory: r ∥ v → h = 0.
	if _, err := ElementsFromRV(geo.Vec3{X: 7000}, geo.Vec3{X: 1}, geo.Epoch); err == nil {
		t.Errorf("rectilinear trajectory must fail")
	}
	// Hyperbolic speed at LEO radius.
	if _, err := ElementsFromRV(geo.Vec3{X: 7000}, geo.Vec3{Y: 20}, geo.Epoch); err == nil {
		t.Errorf("hyperbolic orbit must fail")
	}
	// Circular equatorial: well-defined anomaly, zero Ω/ω.
	r := geo.Vec3{X: 7000}
	vc := math.Sqrt(geo.EarthMu / 7000)
	el, err := ElementsFromRV(r, geo.Vec3{Y: vc}, geo.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if el.RAANRad != 0 || el.ArgPerigeeRad != 0 {
		t.Errorf("circular equatorial should fold angles: Ω=%v ω=%v", el.RAANRad, el.ArgPerigeeRad)
	}
	if !almostEq(el.SemiMajorKm, 7000, 1e-6) || el.Eccentricity > 1e-9 {
		t.Errorf("circular equatorial recovery: a=%v e=%v", el.SemiMajorKm, el.Eccentricity)
	}
	// Retrograde circular equatorial (i = 180°): node vector vanishes too.
	el, err = ElementsFromRV(r, geo.Vec3{Y: -vc}, geo.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(el.InclinationRad, math.Pi, 1e-9) {
		t.Errorf("retrograde inclination = %v, want π", el.InclinationRad)
	}
}
