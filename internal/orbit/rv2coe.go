package orbit

import (
	"fmt"
	"math"
	"time"

	"leosim/internal/geo"
)

// ElementsFromRV recovers classical (osculating) orbital elements from an
// ECI position (km) and velocity (km/s) — the standard rv2coe conversion.
// It is the inverse of the propagators' element→state mapping and is used to
// validate SGP4 output (inclination, semi-major axis) and to ingest state
// vectors from external sources.
//
// Degenerate geometries are handled conventionally: for (near-)circular
// orbits the argument of perigee is folded into the anomaly measured from
// the ascending node; for (near-)equatorial orbits the RAAN is folded into
// the argument of latitude.
func ElementsFromRV(r, v geo.Vec3, epoch time.Time) (Elements, error) {
	rn := r.Norm()
	vn := v.Norm()
	if rn == 0 {
		return Elements{}, fmt.Errorf("orbit: zero position vector")
	}
	mu := geo.EarthMu

	// Specific angular momentum and node vector.
	h := r.Cross(v)
	hn := h.Norm()
	if hn == 0 {
		return Elements{}, fmt.Errorf("orbit: rectilinear trajectory (h = 0)")
	}
	k := geo.Vec3{Z: 1}
	node := k.Cross(h)
	nn := node.Norm()

	// Eccentricity vector.
	rv := r.Dot(v)
	evec := r.Scale(vn*vn - mu/rn).Sub(v.Scale(rv)).Scale(1 / mu)
	ecc := evec.Norm()

	// Specific energy → semi-major axis.
	energy := vn*vn/2 - mu/rn
	if energy >= 0 {
		return Elements{}, fmt.Errorf("orbit: non-elliptical orbit (energy %.3f ≥ 0)", energy)
	}
	a := -mu / (2 * energy)

	inc := math.Acos(clamp(h.Z/hn, -1, 1))

	const small = 1e-10
	var raan, argp, nu float64
	switch {
	case nn > small && ecc > small:
		raan = math.Acos(clamp(node.X/nn, -1, 1))
		if node.Y < 0 {
			raan = 2*math.Pi - raan
		}
		argp = math.Acos(clamp(node.Dot(evec)/(nn*ecc), -1, 1))
		if evec.Z < 0 {
			argp = 2*math.Pi - argp
		}
		nu = math.Acos(clamp(evec.Dot(r)/(ecc*rn), -1, 1))
		if rv < 0 {
			nu = 2*math.Pi - nu
		}
	case nn > small: // circular inclined: ν measured from the node
		raan = math.Acos(clamp(node.X/nn, -1, 1))
		if node.Y < 0 {
			raan = 2*math.Pi - raan
		}
		argp = 0
		nu = math.Acos(clamp(node.Dot(r)/(nn*rn), -1, 1))
		if r.Z < 0 {
			nu = 2*math.Pi - nu
		}
	case ecc > small: // elliptical equatorial: ω measured from +X
		raan = 0
		argp = math.Acos(clamp(evec.X/ecc, -1, 1))
		if evec.Y < 0 {
			argp = 2*math.Pi - argp
		}
		nu = math.Acos(clamp(evec.Dot(r)/(ecc*rn), -1, 1))
		if rv < 0 {
			nu = 2*math.Pi - nu
		}
	default: // circular equatorial: true longitude from +X
		raan, argp = 0, 0
		nu = math.Acos(clamp(r.X/rn, -1, 1))
		if r.Y < 0 {
			nu = 2*math.Pi - nu
		}
	}

	// True anomaly → eccentric → mean.
	ea := 2 * math.Atan2(math.Sqrt(1-ecc)*math.Sin(nu/2), math.Sqrt(1+ecc)*math.Cos(nu/2))
	ma := ea - ecc*math.Sin(ea)
	ma = math.Mod(ma+2*math.Pi, 2*math.Pi)

	return Elements{
		SemiMajorKm:    a,
		Eccentricity:   ecc,
		InclinationRad: inc,
		RAANRad:        raan,
		ArgPerigeeRad:  argp,
		MeanAnomalyRad: ma,
		Epoch:          epoch,
	}, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
