package orbit

import (
	"fmt"
	"math"
	"time"

	"leosim/internal/geo"
)

// SGP4 is a port of the standard near-Earth SGP4 propagator (Vallado's
// reference implementation, WGS-72 constants, as used operationally with
// NORAD TLEs). Deep-space orbits (period ≥ 225 min) are out of scope for LEO
// broadband constellations and are rejected at initialization.
//
// The propagator produces positions in the TEME inertial frame; for the link
// geometry in this simulator TEME is treated as ECI and rotated to
// Earth-fixed via GMST, which is the customary approximation in LEO network
// simulation (sub-kilometer at these altitudes over a day).
type SGP4 struct {
	epoch time.Time

	// Initialization state (names follow the reference implementation).
	isimp                        bool
	bstar                        float64
	inclo, nodeo, ecco, argpo    float64
	mo, noUnkozai                float64
	aycof, con41, cc1, cc4, cc5  float64
	d2, d3, d4                   float64
	delmo, eta, argpdot          float64
	omgcof, sinmao, t2cof, t3cof float64
	t4cof, t5cof, x1mth2, x7thm1 float64
	mdot, nodedot, xlcof, xmcof  float64
	nodecf                       float64
}

// WGS-72 gravitational constants, as used by the operational SGP4.
const (
	sgp4Mu    = 398600.8 // km^3/s^2
	sgp4Re    = 6378.135 // km
	sgp4J2    = 0.001082616
	sgp4J3    = -0.00000253881
	sgp4J4    = -0.00000165597
	sgp4J3oJ2 = sgp4J3 / sgp4J2
	sgp4X2o3  = 2.0 / 3.0
)

var (
	// sgp4XKE is sqrt(mu) in units of (earth radii)^1.5 / minute.
	sgp4XKE    = 60.0 / math.Sqrt(sgp4Re*sgp4Re*sgp4Re/sgp4Mu)
	sgp4VKmSec = sgp4Re * sgp4XKE / 60.0
)

// NewSGP4 initializes the propagator from a TLE.
func NewSGP4(t TLE) (*SGP4, error) {
	s := &SGP4{
		epoch: t.Epoch,
		bstar: t.BStar,
		inclo: t.InclinationDeg * geo.Deg,
		nodeo: t.RAANDeg * geo.Deg,
		ecco:  t.Eccentricity,
		argpo: t.ArgPerigeeDeg * geo.Deg,
		mo:    t.MeanAnomalyDeg * geo.Deg,
	}
	noKozai := t.MeanMotionRadPerMin()
	if noKozai <= 0 {
		return nil, fmt.Errorf("sgp4: non-positive mean motion")
	}
	if s.ecco < 0 || s.ecco >= 1 {
		return nil, fmt.Errorf("sgp4: eccentricity %v outside [0,1)", s.ecco)
	}

	// ---- initl: recover original (un-Kozai'd) mean motion. ----
	eccsq := s.ecco * s.ecco
	omeosq := 1 - eccsq
	rteosq := math.Sqrt(omeosq)
	cosio := math.Cos(s.inclo)
	cosio2 := cosio * cosio

	ak := math.Pow(sgp4XKE/noKozai, sgp4X2o3)
	d1 := 0.75 * sgp4J2 * (3*cosio2 - 1) / (rteosq * omeosq)
	del := d1 / (ak * ak)
	adel := ak * (1 - del*del - del*(1.0/3.0+134.0*del*del/81.0))
	del = d1 / (adel * adel)
	s.noUnkozai = noKozai / (1 + del)

	ao := math.Pow(sgp4XKE/s.noUnkozai, sgp4X2o3)
	sinio := math.Sin(s.inclo)
	po := ao * omeosq
	con42 := 1 - 5*cosio2
	s.con41 = -con42 - 2*cosio2
	posq := po * po
	rp := ao * (1 - s.ecco)

	// Reject deep-space orbits: this port implements near-Earth SGP4 only.
	if 2*math.Pi/s.noUnkozai >= 225.0 {
		return nil, fmt.Errorf("sgp4: deep-space orbit (period ≥ 225 min) not supported")
	}
	if omeosq < 0 {
		return nil, fmt.Errorf("sgp4: invalid eccentricity")
	}

	s.isimp = rp < 220.0/sgp4Re+1.0

	const ss = 78.0/sgp4Re + 1.0
	qzms2t := math.Pow((120.0-78.0)/sgp4Re, 4)
	sfour := ss
	qzms24 := qzms2t
	perige := (rp - 1) * sgp4Re
	if perige < 156 {
		sfour = perige - 78
		if perige < 98 {
			sfour = 20
		}
		qzms24 = math.Pow((120-sfour)/sgp4Re, 4)
		sfour = sfour/sgp4Re + 1
	}
	pinvsq := 1 / posq

	tsi := 1 / (ao - sfour)
	s.eta = ao * s.ecco * tsi
	etasq := s.eta * s.eta
	eeta := s.ecco * s.eta
	psisq := math.Abs(1 - etasq)
	coef := qzms24 * math.Pow(tsi, 4)
	coef1 := coef / math.Pow(psisq, 3.5)
	cc2 := coef1 * s.noUnkozai * (ao*(1+1.5*etasq+eeta*(4+etasq)) +
		0.375*sgp4J2*tsi/psisq*s.con41*(8+3*etasq*(8+etasq)))
	s.cc1 = s.bstar * cc2
	cc3 := 0.0
	if s.ecco > 1e-4 {
		cc3 = -2 * coef * tsi * sgp4J3oJ2 * s.noUnkozai * sinio / s.ecco
	}
	s.x1mth2 = 1 - cosio2
	s.cc4 = 2 * s.noUnkozai * coef1 * ao * omeosq *
		(s.eta*(2+0.5*etasq) + s.ecco*(0.5+2*etasq) -
			sgp4J2*tsi/(ao*psisq)*(-3*s.con41*(1-2*eeta+etasq*(1.5-0.5*eeta))+
				0.75*s.x1mth2*(2*etasq-eeta*(1+etasq))*math.Cos(2*s.argpo)))
	s.cc5 = 2 * coef1 * ao * omeosq * (1 + 2.75*(etasq+eeta) + eeta*etasq)
	cosio4 := cosio2 * cosio2
	temp1 := 1.5 * sgp4J2 * pinvsq * s.noUnkozai
	temp2 := 0.5 * temp1 * sgp4J2 * pinvsq
	temp3 := -0.46875 * sgp4J4 * pinvsq * pinvsq * s.noUnkozai
	s.mdot = s.noUnkozai + 0.5*temp1*rteosq*s.con41 +
		0.0625*temp2*rteosq*(13-78*cosio2+137*cosio4)
	s.argpdot = -0.5*temp1*con42 + 0.0625*temp2*(7-114*cosio2+395*cosio4) +
		temp3*(3-36*cosio2+49*cosio4)
	xhdot1 := -temp1 * cosio
	s.nodedot = xhdot1 + (0.5*temp2*(4-19*cosio2)+2*temp3*(3-7*cosio2))*cosio
	s.omgcof = s.bstar * cc3 * math.Cos(s.argpo)
	s.xmcof = 0
	if s.ecco > 1e-4 {
		s.xmcof = -sgp4X2o3 * coef * s.bstar / eeta
	}
	s.nodecf = 3.5 * omeosq * xhdot1 * s.cc1
	s.t2cof = 1.5 * s.cc1
	if math.Abs(cosio+1) > 1.5e-12 {
		s.xlcof = -0.25 * sgp4J3oJ2 * sinio * (3 + 5*cosio) / (1 + cosio)
	} else {
		s.xlcof = -0.25 * sgp4J3oJ2 * sinio * (3 + 5*cosio) / 1.5e-12
	}
	s.aycof = -0.5 * sgp4J3oJ2 * sinio
	s.delmo = math.Pow(1+s.eta*math.Cos(s.mo), 3)
	s.sinmao = math.Sin(s.mo)
	s.x7thm1 = 7*cosio2 - 1

	if !s.isimp {
		cc1sq := s.cc1 * s.cc1
		s.d2 = 4 * ao * tsi * cc1sq
		temp := s.d2 * tsi * s.cc1 / 3
		s.d3 = (17*ao + sfour) * temp
		s.d4 = 0.5 * temp * ao * tsi * (221*ao + 31*sfour) * s.cc1
		s.t3cof = s.d2 + 2*cc1sq
		s.t4cof = 0.25 * (3*s.d3 + s.cc1*(12*s.d2+10*cc1sq))
		s.t5cof = 0.2 * (3*s.d4 + 12*s.cc1*s.d3 + 6*s.d2*s.d2 +
			15*cc1sq*(2*s.d2+cc1sq))
	}
	return s, nil
}

// Epoch returns the TLE epoch the propagator was initialized from.
func (s *SGP4) Epoch() time.Time { return s.epoch }

// PosVelECI returns the TEME/ECI position (km) and velocity (km/s) at time t.
func (s *SGP4) PosVelECI(t time.Time) (geo.Vec3, geo.Vec3, error) {
	tsince := t.Sub(s.epoch).Minutes()
	return s.posVelAt(tsince)
}

// PositionECI implements Propagator. Propagation errors (decay, hyperbolic
// drag solutions) surface as a zero vector; experiments that care should use
// PosVelECI.
func (s *SGP4) PositionECI(t time.Time) geo.Vec3 {
	p, _, err := s.PosVelECI(t)
	if err != nil {
		return geo.Vec3{}
	}
	return p
}

// PositionECEF implements Propagator.
func (s *SGP4) PositionECEF(t time.Time) geo.Vec3 {
	return geo.ECIToECEF(s.PositionECI(t), t)
}

// posVelAt propagates tsince minutes past epoch.
func (s *SGP4) posVelAt(tsince float64) (geo.Vec3, geo.Vec3, error) {
	const twopi = 2 * math.Pi

	// Secular gravity and atmospheric drag.
	xmdf := s.mo + s.mdot*tsince
	argpdf := s.argpo + s.argpdot*tsince
	nodedf := s.nodeo + s.nodedot*tsince
	argpm := argpdf
	mm := xmdf
	t2 := tsince * tsince
	nodem := nodedf + s.nodecf*t2
	tempa := 1 - s.cc1*tsince
	tempe := s.bstar * s.cc4 * tsince
	templ := s.t2cof * t2

	if !s.isimp {
		delomg := s.omgcof * tsince
		delmTemp := 1 + s.eta*math.Cos(xmdf)
		delm := s.xmcof * (delmTemp*delmTemp*delmTemp - s.delmo)
		temp := delomg + delm
		mm = xmdf + temp
		argpm = argpdf - temp
		t3 := t2 * tsince
		t4 := t3 * tsince
		tempa = tempa - s.d2*t2 - s.d3*t3 - s.d4*t4
		tempe += s.bstar * s.cc5 * (math.Sin(mm) - s.sinmao)
		templ = templ + s.t3cof*t3 + t4*(s.t4cof+tsince*s.t5cof)
	}

	nm := s.noUnkozai
	em := s.ecco
	inclm := s.inclo
	if nm <= 0 {
		return geo.Vec3{}, geo.Vec3{}, fmt.Errorf("sgp4: mean motion %v non-positive", nm)
	}
	am := math.Pow(sgp4XKE/nm, sgp4X2o3) * tempa * tempa
	nm = sgp4XKE / math.Pow(am, 1.5)
	em -= tempe
	if em >= 1 || em < -0.001 {
		return geo.Vec3{}, geo.Vec3{}, fmt.Errorf("sgp4: eccentricity %v out of range (decayed?)", em)
	}
	if em < 1e-6 {
		em = 1e-6
	}
	mm += s.noUnkozai * templ
	xlm := mm + argpm + nodem

	nodem = math.Mod(nodem, twopi)
	argpm = math.Mod(argpm, twopi)
	xlm = math.Mod(xlm, twopi)
	mm = math.Mod(xlm-argpm-nodem, twopi)
	if mm < 0 {
		mm += twopi
	}

	// No deep-space contribution: periodics are the near-Earth ones only.
	ep := em
	xincp := inclm
	argpp := argpm
	nodep := nodem
	mp := mm
	sinip := math.Sin(xincp)
	cosip := math.Cos(xincp)

	// Long-period periodics.
	axnl := ep * math.Cos(argpp)
	temp := 1 / (am * (1 - ep*ep))
	aynl := ep*math.Sin(argpp) + temp*s.aycof
	xl := mp + argpp + nodep + temp*s.xlcof*axnl

	// Kepler's equation for (E + ω).
	u := math.Mod(xl-nodep, twopi)
	eo1 := u
	var sineo1, coseo1 float64
	for ktr := 0; ktr < 10; ktr++ {
		sineo1 = math.Sin(eo1)
		coseo1 = math.Cos(eo1)
		tem5 := 1 - coseo1*axnl - sineo1*aynl
		tem5 = (u - aynl*coseo1 + axnl*sineo1 - eo1) / tem5
		if math.Abs(tem5) >= 0.95 {
			if tem5 > 0 {
				tem5 = 0.95
			} else {
				tem5 = -0.95
			}
		}
		eo1 += tem5
		if math.Abs(tem5) < 1e-12 {
			break
		}
	}

	// Short-period preliminary quantities.
	ecose := axnl*coseo1 + aynl*sineo1
	esine := axnl*sineo1 - aynl*coseo1
	el2 := axnl*axnl + aynl*aynl
	pl := am * (1 - el2)
	if pl < 0 {
		return geo.Vec3{}, geo.Vec3{}, fmt.Errorf("sgp4: semi-latus rectum %v < 0", pl)
	}
	rl := am * (1 - ecose)
	rdotl := math.Sqrt(am) * esine / rl
	rvdotl := math.Sqrt(pl) / rl
	betal := math.Sqrt(1 - el2)
	temp = esine / (1 + betal)
	sinu := am / rl * (sineo1 - aynl - axnl*temp)
	cosu := am / rl * (coseo1 - axnl + aynl*temp)
	su := math.Atan2(sinu, cosu)
	sin2u := (cosu + cosu) * sinu
	cos2u := 1 - 2*sinu*sinu
	temp = 1 / pl
	temp1 := 0.5 * sgp4J2 * temp
	temp2 := temp1 * temp

	// Short-period periodics.
	mrt := rl*(1-1.5*temp2*betal*s.con41) + 0.5*temp1*s.x1mth2*cos2u
	su -= 0.25 * temp2 * s.x7thm1 * sin2u
	xnode := nodep + 1.5*temp2*cosip*sin2u
	xinc := xincp + 1.5*temp2*cosip*sinip*cos2u
	mvt := rdotl - nm*temp1*s.x1mth2*sin2u/sgp4XKE
	rvdot := rvdotl + nm*temp1*(s.x1mth2*cos2u+1.5*s.con41)/sgp4XKE

	// Orientation vectors and position/velocity.
	sinsu, cossu := math.Sincos(su)
	snod, cnod := math.Sincos(xnode)
	sini, cosi := math.Sincos(xinc)
	xmx := -snod * cosi
	xmy := cnod * cosi
	ux := xmx*sinsu + cnod*cossu
	uy := xmy*sinsu + snod*cossu
	uz := sini * sinsu
	vx := xmx*cossu - cnod*sinsu
	vy := xmy*cossu - snod*sinsu
	vz := sini * cossu

	if mrt < 1 {
		return geo.Vec3{}, geo.Vec3{}, fmt.Errorf("sgp4: satellite decayed (r = %.3f earth radii)", mrt)
	}
	r := geo.Vec3{X: mrt * ux * sgp4Re, Y: mrt * uy * sgp4Re, Z: mrt * uz * sgp4Re}
	v := geo.Vec3{
		X: (mvt*ux + rvdot*vx) * sgp4VKmSec,
		Y: (mvt*uy + rvdot*vy) * sgp4VKmSec,
		Z: (mvt*uz + rvdot*vz) * sgp4VKmSec,
	}
	return r, v, nil
}
