package orbit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"leosim/internal/geo"
)

// TLE is a parsed NORAD two-line element set.
type TLE struct {
	Name   string // optional line 0
	SatNum int

	Epoch time.Time

	// Mean elements at epoch, in TLE units.
	InclinationDeg float64
	RAANDeg        float64
	Eccentricity   float64
	ArgPerigeeDeg  float64
	MeanAnomalyDeg float64
	MeanMotion     float64 // revolutions per day

	BStar   float64 // drag term, 1/earth-radii
	NDot    float64 // first derivative of mean motion / 2, rev/day^2
	NDDot   float64 // second derivative of mean motion / 6, rev/day^3
	ElsetNo int
	RevNum  int
}

// MeanMotionRadPerMin returns the mean motion in radians per minute, the
// unit SGP4 consumes.
func (t TLE) MeanMotionRadPerMin() float64 {
	return t.MeanMotion * 2 * math.Pi / 1440
}

// SemiMajorKm returns the Kozai semi-major axis implied by the mean motion.
func (t TLE) SemiMajorKm() float64 {
	n := t.MeanMotion * 2 * math.Pi / 86400 // rad/s
	return math.Cbrt(geo.EarthMu / (n * n))
}

// Elements converts the TLE mean elements to classical elements. This drops
// the SGP4 mean-element theory (Kozai → Brouwer conversion) and is intended
// for coarse geometry, not precision propagation; use NewSGP4 for the latter.
func (t TLE) Elements() Elements {
	return Elements{
		SemiMajorKm:    t.SemiMajorKm(),
		Eccentricity:   t.Eccentricity,
		InclinationRad: t.InclinationDeg * geo.Deg,
		RAANRad:        t.RAANDeg * geo.Deg,
		ArgPerigeeRad:  t.ArgPerigeeDeg * geo.Deg,
		MeanAnomalyRad: t.MeanAnomalyDeg * geo.Deg,
		Epoch:          t.Epoch,
	}
}

// ParseTLE parses a two- or three-line element set. Lines may carry trailing
// whitespace. The checksum of both data lines is verified.
func ParseTLE(lines ...string) (TLE, error) {
	var l0, l1, l2 string
	switch len(lines) {
	case 2:
		l1, l2 = lines[0], lines[1]
	case 3:
		l0, l1, l2 = lines[0], lines[1], lines[2]
	default:
		return TLE{}, fmt.Errorf("tle: want 2 or 3 lines, got %d", len(lines))
	}
	l1 = strings.TrimRight(l1, " \r\n")
	l2 = strings.TrimRight(l2, " \r\n")
	if len(l1) < 69 || len(l2) < 69 {
		return TLE{}, fmt.Errorf("tle: lines must be at least 69 characters (got %d, %d)", len(l1), len(l2))
	}
	if l1[0] != '1' || l2[0] != '2' {
		return TLE{}, fmt.Errorf("tle: line numbers must be 1 and 2")
	}
	for i, l := range []string{l1, l2} {
		if err := verifyChecksum(l); err != nil {
			return TLE{}, fmt.Errorf("tle: line %d: %w", i+1, err)
		}
	}

	var t TLE
	t.Name = strings.TrimSpace(l0)
	var err error
	if t.SatNum, err = atoiField(l1[2:7]); err != nil {
		return TLE{}, fmt.Errorf("tle: satnum: %w", err)
	}
	if t.Epoch, err = parseEpoch(l1[18:32]); err != nil {
		return TLE{}, err
	}
	if t.NDot, err = atofField(l1[33:43]); err != nil {
		return TLE{}, fmt.Errorf("tle: ndot: %w", err)
	}
	if t.NDDot, err = parseImpliedDecimal(l1[44:52]); err != nil {
		return TLE{}, fmt.Errorf("tle: nddot: %w", err)
	}
	if t.BStar, err = parseImpliedDecimal(l1[53:61]); err != nil {
		return TLE{}, fmt.Errorf("tle: bstar: %w", err)
	}
	if t.ElsetNo, err = atoiField(l1[64:68]); err != nil {
		return TLE{}, fmt.Errorf("tle: elset: %w", err)
	}

	if t.InclinationDeg, err = atofField(l2[8:16]); err != nil {
		return TLE{}, fmt.Errorf("tle: inclination: %w", err)
	}
	if t.RAANDeg, err = atofField(l2[17:25]); err != nil {
		return TLE{}, fmt.Errorf("tle: raan: %w", err)
	}
	eraw := strings.TrimSpace(l2[26:33])
	if t.Eccentricity, err = strconv.ParseFloat("0."+eraw, 64); err != nil {
		return TLE{}, fmt.Errorf("tle: eccentricity: %w", err)
	}
	if t.ArgPerigeeDeg, err = atofField(l2[34:42]); err != nil {
		return TLE{}, fmt.Errorf("tle: argp: %w", err)
	}
	if t.MeanAnomalyDeg, err = atofField(l2[43:51]); err != nil {
		return TLE{}, fmt.Errorf("tle: mean anomaly: %w", err)
	}
	if t.MeanMotion, err = atofField(l2[52:63]); err != nil {
		return TLE{}, fmt.Errorf("tle: mean motion: %w", err)
	}
	if t.RevNum, err = atoiField(l2[63:68]); err != nil {
		return TLE{}, fmt.Errorf("tle: rev number: %w", err)
	}
	if err := t.validate(); err != nil {
		return TLE{}, err
	}
	return t, nil
}

// validate rejects element values outside the physical/format ranges; such
// lines can only arise from corruption (the checksum is weak).
func (t TLE) validate() error {
	switch {
	case t.MeanMotion <= 0 || t.MeanMotion > 20:
		return fmt.Errorf("tle: mean motion %v rev/day out of range (0,20]", t.MeanMotion)
	case t.InclinationDeg < 0 || t.InclinationDeg > 180:
		return fmt.Errorf("tle: inclination %v out of [0,180]", t.InclinationDeg)
	case t.RAANDeg < 0 || t.RAANDeg >= 360:
		return fmt.Errorf("tle: RAAN %v out of [0,360)", t.RAANDeg)
	case t.ArgPerigeeDeg < 0 || t.ArgPerigeeDeg >= 360:
		return fmt.Errorf("tle: argument of perigee %v out of [0,360)", t.ArgPerigeeDeg)
	case t.MeanAnomalyDeg < 0 || t.MeanAnomalyDeg >= 360:
		return fmt.Errorf("tle: mean anomaly %v out of [0,360)", t.MeanAnomalyDeg)
	case t.Eccentricity < 0 || t.Eccentricity >= 1:
		return fmt.Errorf("tle: eccentricity %v out of [0,1)", t.Eccentricity)
	case t.SatNum < 0:
		return fmt.Errorf("tle: negative satellite number")
	case math.Abs(t.NDot) >= 1:
		return fmt.Errorf("tle: ndot %v out of (-1,1) rev/day²", t.NDot)
	case math.Abs(t.NDDot) >= 1 || math.Abs(t.BStar) >= 1:
		return fmt.Errorf("tle: nddot/bstar magnitude ≥ 1")
	}
	return nil
}

// Format renders the TLE as a standard two-line element set with valid
// checksums. The output round-trips through ParseTLE.
func (t TLE) Format() (line1, line2 string) {
	epochYr := t.Epoch.UTC().Year() % 100
	doy := float64(t.Epoch.UTC().YearDay()) + secondsIntoDay(t.Epoch)/86400

	l1 := fmt.Sprintf("1 %05dU 00000A   %02d%012.8f %s %s %s 0 %4d",
		t.SatNum%100000, epochYr, doy,
		formatNDot(t.NDot), formatImplied(t.NDDot), formatImplied(t.BStar),
		t.ElsetNo%10000)
	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.SatNum%100000, t.InclinationDeg, t.RAANDeg,
		int(math.Round(t.Eccentricity*1e7))%10000000,
		t.ArgPerigeeDeg, t.MeanAnomalyDeg, t.MeanMotion, t.RevNum%100000)
	return l1 + strconv.Itoa(checksum(l1)), l2 + strconv.Itoa(checksum(l2))
}

func secondsIntoDay(t time.Time) float64 {
	t = t.UTC()
	return float64(t.Hour())*3600 + float64(t.Minute())*60 +
		float64(t.Second()) + float64(t.Nanosecond())*1e-9
}

// checksum computes the TLE checksum of the first 68 characters: the sum of
// all digits, with '-' counting as 1, modulo 10.
func checksum(line string) int {
	sum := 0
	n := len(line)
	if n > 68 {
		n = 68
	}
	for _, c := range line[:n] {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

func verifyChecksum(line string) error {
	want := checksum(line)
	got := int(line[68] - '0')
	if got != want {
		return fmt.Errorf("checksum %d, want %d", got, want)
	}
	return nil
}

// parseEpoch decodes the YYDDD.DDDDDDDD epoch field. Years 57–99 map to
// 1957–1999, 00–56 to 2000–2056, per convention.
func parseEpoch(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if len(s) < 5 {
		return time.Time{}, fmt.Errorf("tle: epoch field %q too short", s)
	}
	yy, err := strconv.Atoi(s[:2])
	if err != nil {
		return time.Time{}, fmt.Errorf("tle: epoch year: %w", err)
	}
	year := 2000 + yy
	if yy >= 57 {
		year = 1900 + yy
	}
	doy, err := strconv.ParseFloat(s[2:], 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("tle: epoch day: %w", err)
	}
	if doy < 1 || doy >= 367 {
		return time.Time{}, fmt.Errorf("tle: epoch day-of-year %v out of [1,367)", doy)
	}
	base := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration((doy - 1) * 86400 * float64(time.Second))), nil
}

// parseImpliedDecimal parses TLE fields like " 12345-3" meaning 0.12345e-3,
// or "-11606-4" meaning -0.11606e-4.
func parseImpliedDecimal(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "00000-0" || s == "00000+0" {
		return 0, nil
	}
	sign := 1.0
	if s[0] == '-' {
		sign = -1
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	// Split mantissa and exponent: exponent is the trailing signed digit.
	var mant, exp string
	if i := strings.LastIndexAny(s, "+-"); i > 0 {
		mant, exp = s[:i], s[i:]
	} else {
		mant, exp = s, "0"
	}
	m, err := strconv.ParseFloat("0."+mant, 64)
	if err != nil {
		return 0, err
	}
	e, err := strconv.Atoi(strings.TrimPrefix(exp, "+"))
	if err != nil {
		return 0, err
	}
	return sign * m * math.Pow(10, float64(e)), nil
}

func formatImplied(v float64) string {
	if v == 0 {
		return " 00000+0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := 0
	for v < 0.1 {
		v *= 10
		exp--
	}
	for v >= 1 {
		v /= 10
		exp++
	}
	mant := int(math.Round(v * 1e5))
	if mant == 100000 { // rounding pushed the mantissa to 1.0
		mant = 10000
		exp++
	}
	es := fmt.Sprintf("%+d", exp)
	return fmt.Sprintf("%s%05d%s", sign, mant, es)
}

func formatNDot(v float64) string {
	return fmt.Sprintf("%s.%08d", signStr(v), int(math.Round(math.Abs(v)*1e8))%100000000)
}

func signStr(v float64) string {
	if v < 0 {
		return "-"
	}
	return " "
}

func atoiField(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func atofField(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}
