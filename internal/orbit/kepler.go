package orbit

import (
	"math"
	"time"

	"leosim/internal/geo"
)

// SolveKepler solves Kepler's equation M = E − e·sin(E) for the eccentric
// anomaly E (radians) given mean anomaly M (radians) and eccentricity ecc.
// Newton–Raphson converges in a handful of iterations for e < 0.9; a bisection
// fallback guards pathological cases.
func SolveKepler(meanAnom, ecc float64) float64 {
	m := math.Mod(meanAnom, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	if ecc == 0 {
		return m
	}
	// Initial guess per Vallado: E0 = M + e for M < π, else M − e.
	e0 := m + ecc
	if m > math.Pi {
		e0 = m - ecc
	}
	for i := 0; i < 50; i++ {
		f := e0 - ecc*math.Sin(e0) - m
		fp := 1 - ecc*math.Cos(e0)
		d := f / fp
		e0 -= d
		if math.Abs(d) < 1e-12 {
			return e0
		}
	}
	return e0
}

// TrueAnomaly converts eccentric anomaly E to true anomaly ν, both radians.
func TrueAnomaly(eccAnom, ecc float64) float64 {
	s := math.Sqrt(1-ecc*ecc) * math.Sin(eccAnom)
	c := math.Cos(eccAnom) - ecc
	return math.Atan2(s, c)
}

// circAnomalySinCos returns sin and cos of m0+theta through the angle-sum
// identity. For circular orbits the true anomaly IS the mean anomaly, so this
// replaces the SolveKepler→TrueAnomaly→Sincos chain; the identity's ~1-ulp
// rounding (≈1 µm of position) is the cost of an expression tree whose two
// Sincos factors are cacheable — per satellite (m0) and per orbital plane
// (theta) — which the batched propagator exploits. Scalar and batched paths
// both evaluate exactly this tree, keeping them bit-identical.
func circAnomalySinCos(m0, theta float64) (sinM, cosM float64) {
	sM0, cM0 := math.Sincos(m0)
	sT, cT := math.Sincos(theta)
	return sM0*cT + cM0*sT, cM0*cT - sM0*sT
}

// Propagator yields satellite positions over time.
type Propagator interface {
	// PositionECI returns the ECI position in km at time t.
	PositionECI(t time.Time) geo.Vec3
	// PositionECEF returns the Earth-fixed position in km at time t.
	PositionECEF(t time.Time) geo.Vec3
}

// KeplerPropagator propagates classical elements analytically. When J2Secular
// is set, the dominant secular J2 rates (node regression, perigee rotation,
// and the mean-motion correction to the mean anomaly) are applied — this is
// the propagation model the network experiments use, matching what LEO
// simulation frameworks in this space (Hypatia, StarPerf) do.
type KeplerPropagator struct {
	El        Elements
	J2Secular bool
}

// NewKepler returns a J2-secular Kepler propagator for el.
func NewKepler(el Elements) *KeplerPropagator {
	return &KeplerPropagator{El: el, J2Secular: true}
}

// PositionECI implements Propagator.
func (k *KeplerPropagator) PositionECI(t time.Time) geo.Vec3 {
	pos, _ := k.PosVelECI(t)
	return pos
}

// PositionECEF implements Propagator.
func (k *KeplerPropagator) PositionECEF(t time.Time) geo.Vec3 {
	return geo.ECIToECEF(k.PositionECI(t), t)
}

// PosVelECI returns ECI position (km) and velocity (km/s) at t.
func (k *KeplerPropagator) PosVelECI(t time.Time) (geo.Vec3, geo.Vec3) {
	el := k.El
	dt := t.Sub(el.Epoch).Seconds()
	n := el.MeanMotion()

	raan := el.RAANRad
	argp := el.ArgPerigeeRad
	m := el.MeanAnomalyRad + n*dt
	theta := n * dt
	if k.J2Secular {
		raan += el.NodePrecessionRate() * dt
		argp += el.ArgPerigeePrecessionRate() * dt
		// Secular J2 drift of the mean anomaly (change of anomalistic
		// period): dM/dt extra = (3/4) J2 (Re/p)^2 n sqrt(1-e^2) (3cos^2 i - 1).
		p := el.SemiMajorKm * (1 - el.Eccentricity*el.Eccentricity)
		ratio := geo.EarthEquatorialRadius / p
		ci := math.Cos(el.InclinationRad)
		drift := 0.75 * J2 * ratio * ratio * n *
			math.Sqrt(1-el.Eccentricity*el.Eccentricity) * (3*ci*ci - 1)
		m += drift * dt
		theta += drift * dt
	}

	var sinNu, cosNu, r float64
	if el.Eccentricity == 0 {
		// Circular orbits (every Walker-shell satellite): ν ≡ M = M0 + θ
		// exactly, evaluated through the angle-sum identity. This is the
		// bit-contract the batched fleet propagator shares — it caches
		// Sincos(M0) per satellite and Sincos(θ) per orbital plane, so the
		// identical expression tree here keeps scalar and batch outputs
		// bit-for-bit equal.
		sinNu, cosNu = circAnomalySinCos(el.MeanAnomalyRad, theta)
		r = el.SemiMajorKm
	} else {
		ea := SolveKepler(m, el.Eccentricity)
		nu := TrueAnomaly(ea, el.Eccentricity)
		r = el.SemiMajorKm * (1 - el.Eccentricity*math.Cos(ea))
		sinNu, cosNu = math.Sincos(nu)
	}
	pf := geo.Vec3{X: r * cosNu, Y: r * sinNu}
	pSLR := el.SemiMajorKm * (1 - el.Eccentricity*el.Eccentricity)
	vFac := math.Sqrt(geo.EarthMu / pSLR)
	vf := geo.Vec3{X: -vFac * sinNu, Y: vFac * (el.Eccentricity + cosNu)}

	rot := perifocalToECI(el.InclinationRad, raan, argp)
	return rot.apply(pf), rot.apply(vf)
}

// mat3 is a 3×3 rotation matrix in row-major order.
type mat3 [9]float64

func (m mat3) apply(v geo.Vec3) geo.Vec3 {
	return geo.Vec3{
		X: m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		Y: m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		Z: m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// perifocalToECI builds the rotation from the perifocal (PQW) frame to ECI
// given inclination i, RAAN Ω and argument of perigee ω (radians).
func perifocalToECI(i, raan, argp float64) mat3 {
	so, co := math.Sincos(raan)
	sw, cw := math.Sincos(argp)
	si, ci := math.Sincos(i)
	return mat3{
		co*cw - so*sw*ci, -co*sw - so*cw*ci, so * si,
		so*cw + co*sw*ci, -so*sw + co*cw*ci, -co * si,
		sw * si, cw * si, ci,
	}
}

// SubsatellitePoint returns the geodetic point directly beneath the satellite
// at time t (altitude preserved).
func SubsatellitePoint(p Propagator, t time.Time) geo.LatLon {
	return geo.FromECEF(p.PositionECEF(t))
}
