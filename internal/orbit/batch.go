package orbit

import (
	"math"
	"time"

	"leosim/internal/geo"
)

// KeplerBatch evaluates a fleet of analytic Kepler propagators at one instant
// with the per-call constants hoisted out. Every value it produces is
// bit-identical to calling PositionECI on each propagator — the expression
// trees are the same; only redundant recomputation is removed:
//
//   - the secular rates (mean motion, J2 node/perigee precession, the J2
//     mean-anomaly drift coefficient) are pure functions of the elements,
//     computed once at construction instead of per call;
//   - the perifocal→ECI rotation matrix depends on (i, Ω(t), ω(t)), which a
//     Walker constellation shares across a whole orbital plane — satellites
//     are laid out plane-major, so the matrix is rebuilt only when those
//     inputs change from the previous satellite (once per plane, not per
//     satellite);
//   - the ECEF rotation angle's sine/cosine are computed once per call
//     instead of once per satellite.
//
// The per-step snapshot advancer leans on this: satellite propagation is the
// floor under every incremental step, and the hoisting roughly halves it
// without perturbing a single output bit.
type KeplerBatch struct {
	props []*KeplerPropagator
	// Cached per-satellite secular constants (identical bits to the values
	// PosVelECI derives per call).
	n, raanRate, argpRate, mDrift, sq1me2 []float64
	// sM0 and cM0 cache Sincos(MeanAnomalyRad) for circular orbits — one of
	// the two factors of PosVelECI's angle-sum evaluation (the other,
	// Sincos(θ), is shared across each orbital plane).
	sM0, cM0 []float64
}

// NewKeplerBatch wraps props when every propagator is an analytic
// *KeplerPropagator; ok is false otherwise (e.g. SGP4 fleets), in which case
// callers keep the per-satellite path.
func NewKeplerBatch(props []Propagator) (b *KeplerBatch, ok bool) {
	ks := make([]*KeplerPropagator, len(props))
	for i, p := range props {
		k, isK := p.(*KeplerPropagator)
		if !isK {
			return nil, false
		}
		ks[i] = k
	}
	b = &KeplerBatch{
		props:    ks,
		n:        make([]float64, len(ks)),
		raanRate: make([]float64, len(ks)),
		argpRate: make([]float64, len(ks)),
		mDrift:   make([]float64, len(ks)),
		sq1me2:   make([]float64, len(ks)),
		sM0:      make([]float64, len(ks)),
		cM0:      make([]float64, len(ks)),
	}
	for i, k := range ks {
		el := k.El
		b.n[i] = el.MeanMotion()
		b.sq1me2[i] = math.Sqrt(1 - el.Eccentricity*el.Eccentricity)
		b.sM0[i], b.cM0[i] = math.Sincos(el.MeanAnomalyRad)
		if k.J2Secular {
			b.raanRate[i] = el.NodePrecessionRate()
			b.argpRate[i] = el.ArgPerigeePrecessionRate()
			// The PosVelECI mean-anomaly drift term with the trailing ·dt
			// factored off; the multiplication grouping up to that point is
			// preserved so coeff·dt reproduces the original product exactly.
			p := el.SemiMajorKm * (1 - el.Eccentricity*el.Eccentricity)
			ratio := geo.EarthEquatorialRadius / p
			ci := math.Cos(el.InclinationRad)
			b.mDrift[i] = 0.75 * J2 * ratio * ratio * b.n[i] *
				math.Sqrt(1-el.Eccentricity*el.Eccentricity) * (3*ci*ci - 1)
		}
	}
	return b, true
}

// PositionsECEF fills dst (len ≥ len(props)) with the ECEF position of every
// satellite at t, bit-identical to geo.ECIToECEF(p.PositionECI(t), t) per
// satellite. Chunked callers parallelize via PositionsECEFRange.
func (b *KeplerBatch) PositionsECEF(t time.Time, dst []geo.Vec3) {
	b.PositionsECEFRange(t, 0, len(b.props), dst)
}

// PositionsECEFRange evaluates satellites [lo,hi) into dst[lo:hi]. Ranges may
// be evaluated concurrently on disjoint chunks; the per-plane matrix reuse
// then resets at each chunk boundary, which costs one extra matrix build and
// changes nothing else.
func (b *KeplerBatch) PositionsECEFRange(t time.Time, lo, hi int, dst []geo.Vec3) {
	sinT, cosT := math.Sincos(-geo.GMST(t))
	var (
		rot      mat3
		haveRot  bool
		prevEl   Elements
		dt       float64
		prevSec  bool
		raan     float64
		argp     float64
		haveTime bool
		sTh, cTh float64
	)
	for i := lo; i < hi; i++ {
		k := b.props[i]
		el := k.El
		samePlane := haveRot && prevSec == k.J2Secular &&
			el.SemiMajorKm == prevEl.SemiMajorKm &&
			el.Eccentricity == prevEl.Eccentricity &&
			el.InclinationRad == prevEl.InclinationRad &&
			el.RAANRad == prevEl.RAANRad &&
			el.ArgPerigeeRad == prevEl.ArgPerigeeRad &&
			el.Epoch.Equal(prevEl.Epoch)
		if !samePlane {
			if !haveTime || !el.Epoch.Equal(prevEl.Epoch) {
				dt = t.Sub(el.Epoch).Seconds()
				haveTime = true
			}
			raan = el.RAANRad
			argp = el.ArgPerigeeRad
			if k.J2Secular {
				raan += b.raanRate[i] * dt
				argp += b.argpRate[i] * dt
			}
			rot = perifocalToECI(el.InclinationRad, raan, argp)
			if el.Eccentricity == 0 {
				// θ is a pure function of the plane-shared constants, so
				// its Sincos — the second factor of the angle-sum identity
				// in PosVelECI's circular branch — is too.
				theta := b.n[i] * dt
				if k.J2Secular {
					theta += b.mDrift[i] * dt
				}
				sTh, cTh = math.Sincos(theta)
			}
			haveRot = true
			prevEl = el
			prevSec = k.J2Secular
		}
		var px, py float64
		if el.Eccentricity == 0 {
			// circAnomalySinCos with both Sincos factors cached: Sincos(M0)
			// per satellite, Sincos(θ) per plane. Same products, same bits.
			sinM := b.sM0[i]*cTh + b.cM0[i]*sTh
			cosM := b.cM0[i]*cTh - b.sM0[i]*sTh
			px = el.SemiMajorKm * cosM
			py = el.SemiMajorKm * sinM
		} else {
			m := el.MeanAnomalyRad + b.n[i]*dt
			if k.J2Secular {
				m += b.mDrift[i] * dt
			}
			ea := SolveKepler(m, el.Eccentricity)
			sinEa := math.Sin(ea)
			cosEa := math.Cos(ea)
			// TrueAnomaly(ea, e) with √(1−e²) cached — the same product, so
			// the same bits.
			nu := math.Atan2(b.sq1me2[i]*sinEa, cosEa-el.Eccentricity)
			r := el.SemiMajorKm * (1 - el.Eccentricity*cosEa)
			sinNu, cosNu := math.Sincos(nu)
			px = r * cosNu
			py = r * sinNu
		}
		// rot.apply with the perifocal Z=0 terms dropped (they only add a
		// signed zero), then RotateZ by GMST with the shared sine/cosine.
		x := rot[0]*px + rot[1]*py
		y := rot[3]*px + rot[4]*py
		z := rot[6]*px + rot[7]*py
		dst[i] = geo.Vec3{
			X: cosT*x - sinT*y,
			Y: sinT*x + cosT*y,
			Z: z,
		}
	}
}
