package orbit

import (
	"strings"
	"testing"
	"time"

	"leosim/internal/geo"
)

// FuzzParseTLE asserts the parser never panics and that every successfully
// parsed TLE either initializes SGP4 or is rejected with a clean error.
func FuzzParseTLE(f *testing.F) {
	f.Add(issLine1, issLine2)
	l1, l2 := (TLE{SatNum: 1, Epoch: geo.Epoch, InclinationDeg: 53,
		Eccentricity: 0.0001, MeanMotion: 15.05}).Format()
	f.Add(l1, l2)
	f.Add("1 00000U 00000A   00000.00000000  .00000000  00000-0  00000-0 0    00",
		"2 00000   0.0000   0.0000 0000000   0.0000   0.0000  0.00000000    00")
	f.Add(strings.Repeat("1", 69), strings.Repeat("2", 69))
	f.Fuzz(func(t *testing.T, line1, line2 string) {
		tle, err := ParseTLE(line1, line2)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Parsed TLEs must round-trip through formatting without panic.
		f1, f2 := tle.Format()
		if len(f1) != 69 || len(f2) != 69 {
			t.Fatalf("format lengths %d/%d", len(f1), len(f2))
		}
		// SGP4 init must either succeed or error cleanly; on success,
		// propagation a minute out must not panic.
		s, err := NewSGP4(tle)
		if err != nil {
			return
		}
		_, _, _ = s.PosVelECI(tle.Epoch.Add(time.Minute))
	})
}

// FuzzSolveKepler asserts convergence (finite output satisfying the
// equation) across the valid eccentricity range.
func FuzzSolveKepler(f *testing.F) {
	f.Add(0.5, 0.1)
	f.Add(3.14, 0.9)
	f.Add(-7.0, 0.0)
	f.Fuzz(func(t *testing.T, m, e float64) {
		if e < 0 || e >= 0.99 || m != m || m > 1e9 || m < -1e9 {
			return
		}
		ea := SolveKepler(m, e)
		if ea != ea {
			t.Fatalf("NaN eccentric anomaly for M=%v e=%v", m, e)
		}
	})
}
