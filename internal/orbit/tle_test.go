package orbit

import (
	"math"
	"strings"
	"testing"
	"time"

	"leosim/internal/geo"
)

// A historical ISS TLE (epoch 2008-09-20), widely used as an SGP4 test case.
const (
	issLine1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	issLine2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
)

func TestParseTLEISS(t *testing.T) {
	tle, err := ParseTLE(issLine1, issLine2)
	if err != nil {
		t.Fatalf("ParseTLE: %v", err)
	}
	if tle.SatNum != 25544 {
		t.Errorf("satnum = %d", tle.SatNum)
	}
	if !almostEq(tle.InclinationDeg, 51.6416, 1e-9) {
		t.Errorf("inclination = %v", tle.InclinationDeg)
	}
	if !almostEq(tle.Eccentricity, 0.0006703, 1e-12) {
		t.Errorf("eccentricity = %v", tle.Eccentricity)
	}
	if !almostEq(tle.MeanMotion, 15.72125391, 1e-8) {
		t.Errorf("mean motion = %v", tle.MeanMotion)
	}
	if !almostEq(tle.BStar, -0.11606e-4, 1e-12) {
		t.Errorf("bstar = %v", tle.BStar)
	}
	if !almostEq(tle.NDot, -0.00002182, 1e-12) {
		t.Errorf("ndot = %v", tle.NDot)
	}
	wantEpoch := time.Date(2008, 9, 20, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(0.51782528 * 86400 * float64(time.Second)))
	if d := tle.Epoch.Sub(wantEpoch); d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("epoch = %v, want %v", tle.Epoch, wantEpoch)
	}
	// ISS altitude ≈ 350 km in 2008.
	if alt := tle.SemiMajorKm() - geo.EarthRadius; alt < 330 || alt > 370 {
		t.Errorf("ISS altitude = %v km", alt)
	}
}

func TestParseTLEWithName(t *testing.T) {
	tle, err := ParseTLE("ISS (ZARYA)", issLine1, issLine2)
	if err != nil {
		t.Fatalf("ParseTLE: %v", err)
	}
	if tle.Name != "ISS (ZARYA)" {
		t.Errorf("name = %q", tle.Name)
	}
}

func TestParseTLEErrors(t *testing.T) {
	if _, err := ParseTLE(issLine1); err == nil {
		t.Errorf("single line must fail")
	}
	if _, err := ParseTLE("garbage", "more garbage"); err == nil {
		t.Errorf("short lines must fail")
	}
	// Corrupt the checksum digit.
	bad := issLine1[:68] + "9"
	if _, err := ParseTLE(bad, issLine2); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("bad checksum must fail, got %v", err)
	}
	// Swap the line-number characters.
	if _, err := ParseTLE(issLine2, issLine1); err == nil {
		t.Errorf("swapped lines must fail")
	}
}

func TestChecksum(t *testing.T) {
	if c := checksum(issLine1); c != 7 {
		t.Errorf("line1 checksum = %d, want 7", c)
	}
	if c := checksum(issLine2); c != 7 {
		t.Errorf("line2 checksum = %d, want 7", c)
	}
}

func TestParseImpliedDecimal(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 00000-0", 0},
		{" 00000+0", 0},
		{"-11606-4", -0.11606e-4},
		{" 12345-3", 0.12345e-3},
		{" 13844-3", 0.13844e-3},
		{" 66816-4", 0.66816e-4},
	}
	for _, c := range cases {
		got, err := parseImpliedDecimal(c.in)
		if err != nil {
			t.Errorf("parseImpliedDecimal(%q): %v", c.in, err)
			continue
		}
		if !almostEq(got, c.want, math.Abs(c.want)*1e-12+1e-18) {
			t.Errorf("parseImpliedDecimal(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTLEFormatRoundTrip(t *testing.T) {
	orig := TLE{
		SatNum:         44713,
		Epoch:          time.Date(2020, 3, 1, 6, 30, 0, 0, time.UTC),
		InclinationDeg: 53.0001,
		RAANDeg:        211.4568,
		Eccentricity:   0.0001342,
		ArgPerigeeDeg:  87.6543,
		MeanAnomalyDeg: 272.5001,
		MeanMotion:     15.05563400,
		BStar:          -0.34619e-4,
		ElsetNo:        999,
		RevNum:         2292,
	}
	l1, l2 := orig.Format()
	if len(l1) != 69 || len(l2) != 69 {
		t.Fatalf("formatted lengths %d/%d, want 69/69\n%q\n%q", len(l1), len(l2), l1, l2)
	}
	back, err := ParseTLE(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v\n%q\n%q", err, l1, l2)
	}
	if back.SatNum != orig.SatNum || back.RevNum != orig.RevNum || back.ElsetNo != orig.ElsetNo {
		t.Errorf("integer fields mismatch: %+v", back)
	}
	if !almostEq(back.InclinationDeg, orig.InclinationDeg, 1e-4) ||
		!almostEq(back.RAANDeg, orig.RAANDeg, 1e-4) ||
		!almostEq(back.Eccentricity, orig.Eccentricity, 1e-7) ||
		!almostEq(back.ArgPerigeeDeg, orig.ArgPerigeeDeg, 1e-4) ||
		!almostEq(back.MeanAnomalyDeg, orig.MeanAnomalyDeg, 1e-4) ||
		!almostEq(back.MeanMotion, orig.MeanMotion, 1e-8) {
		t.Errorf("element fields mismatch: %+v vs %+v", back, orig)
	}
	if !almostEq(back.BStar, orig.BStar, 1e-10) {
		t.Errorf("bstar = %v, want %v", back.BStar, orig.BStar)
	}
	if d := back.Epoch.Sub(orig.Epoch); d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("epoch = %v, want %v", back.Epoch, orig.Epoch)
	}
}

func TestEpochYearWindow(t *testing.T) {
	// Year 57 and later map to the 1900s.
	tle := TLE{SatNum: 1, Epoch: time.Date(1958, 2, 1, 0, 0, 0, 0, time.UTC), MeanMotion: 15}
	l1, l2 := tle.Format()
	back, err := ParseTLE(l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.Epoch.Year() != 1958 {
		t.Errorf("epoch year = %d, want 1958", back.Epoch.Year())
	}
}

func TestTLEElements(t *testing.T) {
	tle, err := ParseTLE(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	el := tle.Elements()
	if err := el.Validate(); err != nil {
		t.Fatalf("elements invalid: %v", err)
	}
	if !almostEq(el.InclinationRad*geo.Rad, 51.6416, 1e-9) {
		t.Errorf("inclination = %v", el.InclinationRad*geo.Rad)
	}
	// Period from mean motion: 1440/15.72 ≈ 91.6 minutes.
	if p := el.Period().Minutes(); !almostEq(p, 1440/15.72125391, 0.1) {
		t.Errorf("period = %v min", p)
	}
}

func TestTLEValidateRejectsCorruption(t *testing.T) {
	good := TLE{SatNum: 1, Epoch: geo.Epoch, InclinationDeg: 53,
		Eccentricity: 0.001, MeanMotion: 15}
	mutations := []func(*TLE){
		func(t *TLE) { t.MeanMotion = 25 },
		func(t *TLE) { t.MeanMotion = 0 },
		func(t *TLE) { t.InclinationDeg = 200 },
		func(t *TLE) { t.RAANDeg = 400 },
		func(t *TLE) { t.ArgPerigeeDeg = -5 },
		func(t *TLE) { t.MeanAnomalyDeg = 360 },
		func(t *TLE) { t.Eccentricity = 1.5 },
		func(t *TLE) { t.SatNum = -1 },
		func(t *TLE) { t.NDot = 2 },
		func(t *TLE) { t.BStar = 3 },
	}
	if err := good.validate(); err != nil {
		t.Fatalf("good TLE rejected: %v", err)
	}
	for i, mut := range mutations {
		bad := good
		mut(&bad)
		if bad.validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestParseEpochRejectsBadDay(t *testing.T) {
	if _, err := parseEpoch("20400.00000000"); err == nil {
		t.Errorf("day 400 accepted")
	}
	if _, err := parseEpoch("20000.50000000"); err == nil {
		t.Errorf("day 0 accepted")
	}
}
