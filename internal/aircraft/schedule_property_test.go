package aircraft

import (
	"testing"
	"time"

	"leosim/internal/geo"
)

// Property: every airborne aircraft lies on its route's great circle,
// between the endpoints.
func TestAircraftOnGreatCircleProperty(t *testing.T) {
	f, err := NewFleet(0.5)
	if err != nil {
		t.Fatal(err)
	}
	at := geo.Epoch.Add(9*time.Hour + 17*time.Minute)
	checked := 0
	for _, fl := range f.Flights {
		p, ok := f.positionAt(fl, at)
		if !ok {
			continue
		}
		checked++
		from := geo.LL(fl.From.Lat, fl.From.Lon)
		to := geo.LL(fl.To.Lat, fl.To.Lon)
		dA := geo.GreatCircleKm(from, p)
		dB := geo.GreatCircleKm(p, to)
		// On the geodesic: partial distances sum to the trip length.
		if diff := dA + dB - fl.DistKm; diff > 1 || diff < -1 {
			t.Fatalf("flight %s off its great circle by %v km", fl.From.Code+fl.To.Code, diff)
		}
		if dA > fl.DistKm+1 || dB > fl.DistKm+1 {
			t.Fatalf("flight %s outside its endpoints", fl.From.Code+fl.To.Code)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d airborne aircraft checked", checked)
	}
}

// Property: the schedule is 24h-periodic — the airborne set at t equals the
// set at t+24h.
func TestSchedulePeriodicProperty(t *testing.T) {
	f, err := NewFleet(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []time.Duration{3 * time.Hour, 11*time.Hour + 30*time.Minute, 22 * time.Hour} {
		a := f.ActiveAt(geo.Epoch.Add(off))
		b := f.ActiveAt(geo.Epoch.Add(off + 24*time.Hour))
		if len(a) != len(b) {
			t.Fatalf("offset %v: %d vs %d airborne across a day boundary", off, len(a), len(b))
		}
		for i := range a {
			if a[i].FlightID != b[i].FlightID ||
				geo.GreatCircleKm(a[i].Pos, b[i].Pos) > 1e-6 {
				t.Fatalf("offset %v: aircraft %d differs across periods", off, i)
			}
		}
	}
}
