package aircraft

// Route is a bidirectional great-circle air route with a daily frequency.
type Route struct {
	From, To string
	// PerDay is the number of departures per day in EACH direction.
	PerDay int
}

// routes encode the corridor structure of intercontinental air traffic,
// calibrated so concurrent over-water counts reproduce the real asymmetry:
// hundreds of aircraft over the North Atlantic and North Pacific at any time,
// tens over the central/south Pacific and Indian Ocean, and only a handful
// over the South Atlantic — the asymmetry behind Fig 3.
var routes = []Route{
	// --- North Atlantic (very dense) ---
	{"JFK", "LHR", 20}, {"JFK", "CDG", 12}, {"JFK", "FRA", 8},
	{"JFK", "AMS", 6}, {"JFK", "MAD", 5}, {"JFK", "FCO", 4},
	{"BOS", "LHR", 8}, {"BOS", "CDG", 4}, {"BOS", "AMS", 3},
	{"YYZ", "LHR", 8}, {"YYZ", "CDG", 4}, {"YYZ", "FRA", 4},
	{"ORD", "LHR", 8}, {"ORD", "FRA", 5}, {"ORD", "AMS", 3},
	{"IAD", "LHR", 6}, {"IAD", "CDG", 4}, {"IAD", "FRA", 3},
	{"ATL", "LHR", 5}, {"ATL", "CDG", 4}, {"ATL", "AMS", 4},
	{"MIA", "LHR", 5}, {"MIA", "MAD", 5}, {"MIA", "LIS", 2},
	{"DFW", "LHR", 4}, {"DFW", "FRA", 2},
	{"JFK", "LIS", 3}, {"JFK", "IST", 3}, {"JFK", "DME", 2},
	// --- North Pacific (dense) ---
	{"LAX", "HND", 10}, {"LAX", "ICN", 6}, {"LAX", "PVG", 5},
	{"LAX", "HKG", 4}, {"LAX", "PEK", 4},
	{"SFO", "HND", 8}, {"SFO", "ICN", 5}, {"SFO", "HKG", 4},
	{"SFO", "PVG", 4},
	{"SEA", "HND", 4}, {"SEA", "ICN", 3},
	{"YVR", "HND", 4}, {"YVR", "ICN", 3}, {"YVR", "PVG", 3},
	{"ANC", "HND", 2},
	// --- Mid-Pacific ---
	{"HNL", "LAX", 8}, {"HNL", "SFO", 6}, {"HNL", "HND", 6},
	{"HNL", "SYD", 2}, {"HNL", "AKL", 1}, {"PPT", "LAX", 1},
	{"PPT", "AKL", 1},
	// --- Trans-Pacific south (sparse) ---
	{"SYD", "LAX", 4}, {"SYD", "SFO", 2}, {"MEL", "LAX", 2},
	{"AKL", "LAX", 2}, {"AKL", "SFO", 1}, {"BNE", "LAX", 1},
	{"SCL", "SYD", 1}, {"SCL", "AKL", 1},
	// --- South Atlantic (very sparse: the Fig 3 pathology) ---
	{"GRU", "LIS", 3}, {"GRU", "MAD", 2}, {"GRU", "CDG", 2},
	{"GRU", "LHR", 2}, {"GRU", "FRA", 2},
	{"EZE", "MAD", 2}, {"EZE", "CDG", 1}, {"EZE", "FCO", 1},
	{"GIG", "LIS", 2}, {"GIG", "CDG", 1},
	{"GRU", "JNB", 1}, {"GRU", "LOS", 1}, {"GRU", "ADD", 1},
	{"EZE", "JNB", 1}, {"REC", "LIS", 1}, {"REC", "DKR", 1},
	// --- North/Central Atlantic to South America (via Caribbean) ---
	{"MIA", "GRU", 4}, {"MIA", "EZE", 2}, {"MIA", "BOG", 6},
	{"MIA", "LIM", 3}, {"JFK", "GRU", 3}, {"JFK", "EZE", 2},
	{"JFK", "BOG", 3}, {"MEX", "MAD", 2}, {"BOG", "MAD", 2},
	{"LIM", "MAD", 2},
	// --- Europe ↔ Africa ---
	{"LHR", "JNB", 3}, {"CDG", "JNB", 2}, {"FRA", "JNB", 2},
	{"LHR", "CPT", 2}, {"AMS", "CPT", 1},
	{"LHR", "LOS", 2}, {"CDG", "LOS", 1}, {"AMS", "ACC", 1},
	{"CDG", "DKR", 2}, {"LIS", "ACC", 1},
	{"IST", "JNB", 1}, {"CDG", "NBO", 2}, {"AMS", "NBO", 1},
	{"LHR", "CAI", 3}, {"CDG", "CAI", 2}, {"FRA", "ADD", 1},
	// --- Europe ↔ Asia / Gulf ---
	{"LHR", "DXB", 8}, {"CDG", "DXB", 5}, {"FRA", "DXB", 5},
	{"AMS", "DXB", 3}, {"LHR", "DOH", 6}, {"CDG", "DOH", 4},
	{"LHR", "DEL", 4}, {"LHR", "BOM", 3}, {"FRA", "DEL", 3},
	{"CDG", "DEL", 2}, {"LHR", "SIN", 4}, {"CDG", "SIN", 3},
	{"FRA", "SIN", 3}, {"AMS", "SIN", 2}, {"LHR", "HKG", 5},
	{"CDG", "HKG", 3}, {"FRA", "HKG", 3}, {"LHR", "PEK", 3},
	{"FRA", "PEK", 3}, {"LHR", "PVG", 3}, {"FRA", "PVG", 3},
	{"LHR", "HND", 3}, {"CDG", "HND", 3}, {"FRA", "HND", 2},
	{"DME", "PEK", 2}, {"IST", "SIN", 2}, {"IST", "HKG", 2},
	// --- Gulf / India ↔ Asia-Pacific (Indian Ocean) ---
	{"DXB", "SIN", 6}, {"DXB", "HKG", 4}, {"DXB", "BKK", 5},
	{"DXB", "SYD", 3}, {"DXB", "PER", 2}, {"DXB", "MEL", 2},
	{"DOH", "SIN", 4}, {"DOH", "BKK", 3}, {"DOH", "SYD", 2},
	{"DOH", "PER", 1}, {"BOM", "SIN", 4}, {"DEL", "SIN", 4},
	{"DEL", "HKG", 3}, {"BOM", "HKG", 2},
	// --- Africa ↔ Asia/Oceania ---
	{"JNB", "DXB", 3}, {"JNB", "DOH", 2}, {"JNB", "SIN", 1},
	{"JNB", "PER", 1}, {"JNB", "SYD", 1}, {"NBO", "DXB", 2},
	{"NBO", "BOM", 1}, {"ADD", "DXB", 2}, {"ADD", "DEL", 1},
	// --- Intra-Asia over-water & Oceania ---
	{"SIN", "SYD", 4}, {"SIN", "MEL", 3}, {"SIN", "PER", 3},
	{"SIN", "HKG", 8}, {"SIN", "HND", 4}, {"SIN", "ICN", 3},
	{"KUL", "SYD", 2}, {"BKK", "SYD", 2}, {"HKG", "SYD", 4},
	{"HKG", "MEL", 2}, {"HKG", "HND", 8}, {"HKG", "ICN", 6},
	{"PVG", "HND", 8}, {"PEK", "HND", 5}, {"ICN", "HND", 8},
	{"HND", "SYD", 3}, {"HND", "BNE", 1}, {"ICN", "SYD", 2},
	{"PVG", "SYD", 2}, {"AKL", "SYD", 6}, {"AKL", "MEL", 3},
	{"AKL", "BNE", 2}, {"AKL", "SIN", 2}, {"AKL", "HKG", 1},
	{"BNE", "SIN", 2}, {"BNE", "HKG", 1},
}

// Routes returns a copy of the route catalogue.
func Routes() []Route {
	out := make([]Route, len(routes))
	copy(out, routes)
	return out
}
