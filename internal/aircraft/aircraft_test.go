package aircraft

import (
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/ground"
)

func TestAirportCatalogue(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range airports {
		if len(a.Code) != 3 {
			t.Errorf("airport code %q not 3 letters", a.Code)
		}
		if seen[a.Code] {
			t.Errorf("duplicate airport %q", a.Code)
		}
		seen[a.Code] = true
		if !geo.LL(a.Lat, a.Lon).Valid() {
			t.Errorf("airport %s has invalid coordinates", a.Code)
		}
	}
	if _, ok := AirportByCode("JFK"); !ok {
		t.Errorf("JFK missing")
	}
	if _, ok := AirportByCode("XXX"); ok {
		t.Errorf("XXX should not exist")
	}
	if len(Airports()) != len(airports) {
		t.Errorf("Airports() length mismatch")
	}
}

func TestRouteCatalogueValid(t *testing.T) {
	for _, r := range routes {
		if _, ok := AirportByCode(r.From); !ok {
			t.Errorf("route %s-%s: unknown origin", r.From, r.To)
		}
		if _, ok := AirportByCode(r.To); !ok {
			t.Errorf("route %s-%s: unknown destination", r.From, r.To)
		}
		if r.PerDay < 1 {
			t.Errorf("route %s-%s has frequency %d", r.From, r.To, r.PerDay)
		}
	}
	if len(Routes()) != len(routes) {
		t.Errorf("Routes() length mismatch")
	}
}

func TestNewFleet(t *testing.T) {
	f, err := NewFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Flights) < 500 {
		t.Fatalf("only %d flights/day", len(f.Flights))
	}
	for _, fl := range f.Flights {
		if fl.Duration <= 0 || fl.DistKm <= 0 {
			t.Fatalf("flight %d has no extent: %+v", fl.ID, fl)
		}
		if fl.DepOffset < 0 || fl.DepOffset >= 24*time.Hour {
			t.Fatalf("flight %d departs outside the day: %v", fl.ID, fl.DepOffset)
		}
	}
	if _, err := NewFleet(0); err == nil {
		t.Errorf("zero density must fail")
	}
}

func TestFleetDeterministic(t *testing.T) {
	a, _ := NewFleet(1)
	b, _ := NewFleet(1)
	if len(a.Flights) != len(b.Flights) {
		t.Fatalf("fleet sizes differ")
	}
	for i := range a.Flights {
		if a.Flights[i] != b.Flights[i] {
			t.Fatalf("flight %d differs between builds", i)
		}
	}
}

func TestActiveAircraftPositions(t *testing.T) {
	f, _ := NewFleet(1)
	at := geo.Epoch.Add(10 * time.Hour)
	active := f.ActiveAt(at)
	if len(active) < 100 {
		t.Fatalf("only %d aircraft airborne", len(active))
	}
	for _, a := range active {
		if a.Pos.Alt != CruiseAltKm {
			t.Fatalf("aircraft %s at altitude %v", a.Name, a.Pos.Alt)
		}
		if !geo.LL(a.Pos.Lat, a.Pos.Lon).Valid() {
			t.Fatalf("aircraft %s at invalid position", a.Name)
		}
	}
}

func TestAircraftProgressAlongRoute(t *testing.T) {
	f, _ := NewFleet(1)
	fl := f.Flights[0]
	dep := f.day0.Add(fl.DepOffset)
	// At departure the aircraft is at the origin; halfway it is near the
	// route midpoint; just after arrival it is gone.
	p0, ok := f.positionAt(fl, dep)
	if !ok {
		t.Fatal("aircraft not airborne at departure")
	}
	if d := geo.GreatCircleKm(p0, geo.LL(fl.From.Lat, fl.From.Lon)); d > 1 {
		t.Errorf("at departure %v km from origin", d)
	}
	pm, ok := f.positionAt(fl, dep.Add(fl.Duration/2))
	if !ok {
		t.Fatal("aircraft not airborne at midpoint")
	}
	mid := geo.Intermediate(geo.LL(fl.From.Lat, fl.From.Lon), geo.LL(fl.To.Lat, fl.To.Lon), 0.5)
	if d := geo.GreatCircleKm(pm, mid); d > 30 {
		t.Errorf("midpoint off by %v km", d)
	}
	if _, ok := f.positionAt(fl, dep.Add(fl.Duration+time.Minute)); ok {
		t.Errorf("aircraft still airborne after arrival")
	}
}

func TestScheduleWrapsMidnight(t *testing.T) {
	f, _ := NewFleet(1)
	// Pick a flight that spans midnight.
	var fl Flight
	found := false
	for _, c := range f.Flights {
		if c.DepOffset+c.Duration > 24*time.Hour {
			fl, found = c, true
			break
		}
	}
	if !found {
		t.Skip("no midnight-spanning flight in schedule")
	}
	// Just after the next day starts, the flight is still airborne.
	at := f.day0.Add(24*time.Hour + (fl.DepOffset+fl.Duration-24*time.Hour)/2)
	if _, ok := f.positionAt(fl, at); !ok {
		t.Errorf("midnight-spanning flight lost at wrap")
	}
	// Times before day0 also resolve (schedule is periodic).
	before := f.day0.Add(-24*time.Hour + fl.DepOffset + fl.Duration/2)
	if _, ok := f.positionAt(fl, before); !ok {
		t.Errorf("schedule not periodic into the past")
	}
}

func TestOverWaterFilter(t *testing.T) {
	f, _ := NewFleet(1)
	at := geo.Epoch.Add(14 * time.Hour)
	over := f.OverWaterAt(at)
	all := f.ActiveAt(at)
	if len(over) == 0 || len(over) >= len(all) {
		t.Fatalf("over-water %d of %d active — filter suspicious", len(over), len(all))
	}
	for _, a := range over {
		if ground.IsLand(a.Pos.Lat, a.Pos.Lon) {
			t.Fatalf("aircraft %s over land at %v", a.Name, a.Pos)
		}
	}
}

// The experiments depend on corridor asymmetry: many more aircraft over the
// North Atlantic than the South Atlantic at any hour (§4, Fig 3).
func TestCorridorAsymmetry(t *testing.T) {
	f, _ := NewFleet(1)
	for h := 0; h < 24; h += 3 {
		at := geo.Epoch.Add(time.Duration(h) * time.Hour)
		over := f.OverWaterAt(at)
		north := CountInBox(over, 35, 65, -60, -10)
		south := CountInBox(over, -40, -5, -40, 5)
		if north < 2*south {
			t.Errorf("h=%d: N Atlantic %d vs S Atlantic %d — want strong asymmetry",
				h, north, south)
		}
	}
	// And the North Atlantic must be busy in absolute terms at some hour.
	maxN := 0
	for h := 0; h < 24; h++ {
		n := CountInBox(f.OverWaterAt(geo.Epoch.Add(time.Duration(h)*time.Hour)), 35, 65, -60, -10)
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 40 {
		t.Errorf("peak North Atlantic concurrency = %d, want ≥ 40", maxN)
	}
}

func TestDensityScale(t *testing.T) {
	full, _ := NewFleet(1)
	half, _ := NewFleet(0.5)
	if len(half.Flights) >= len(full.Flights) {
		t.Errorf("density 0.5 should reduce flight count: %d vs %d",
			len(half.Flights), len(full.Flights))
	}
	// Every route keeps at least one flight each way.
	if len(half.Flights) < 2*len(routes) {
		t.Errorf("scaling dropped routes entirely")
	}
}
