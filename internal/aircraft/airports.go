// Package aircraft provides the synthetic in-flight aircraft substrate that
// substitutes for the FlightAware dataset the paper uses: a catalogue of busy
// airports and intercontinental routes with corridor-calibrated frequencies,
// a deterministic daily schedule, aircraft positions at any instant, and the
// over-water filter that selects which aircraft may act as transit ground
// terminals (§3).
//
// The property the experiments depend on is the *asymmetry of corridor
// density* — the North Atlantic and North Pacific carry hundreds of
// concurrent flights while the South Atlantic and southern Indian Ocean carry
// a handful — because that is what makes BP paths detour (Fig 3) and
// congest.
package aircraft

// Airport is a major international airport used as a route endpoint.
type Airport struct {
	Code     string
	Lat, Lon float64
}

// airports are approximate coordinates of the hub airports the synthetic
// routes connect.
var airports = []Airport{
	{"JFK", 40.64, -73.78},   // New York
	{"BOS", 42.36, -71.01},   // Boston
	{"YYZ", 43.68, -79.63},   // Toronto
	{"ORD", 41.97, -87.91},   // Chicago
	{"MIA", 25.79, -80.29},   // Miami
	{"ATL", 33.64, -84.43},   // Atlanta
	{"DFW", 32.90, -97.04},   // Dallas
	{"IAD", 38.95, -77.46},   // Washington
	{"LAX", 33.94, -118.41},  // Los Angeles
	{"SFO", 37.62, -122.38},  // San Francisco
	{"SEA", 47.45, -122.31},  // Seattle
	{"YVR", 49.19, -123.18},  // Vancouver
	{"HNL", 21.32, -157.92},  // Honolulu
	{"ANC", 61.17, -150.00},  // Anchorage
	{"LHR", 51.47, -0.45},    // London
	{"CDG", 49.01, 2.55},     // Paris
	{"FRA", 50.03, 8.56},     // Frankfurt
	{"AMS", 52.31, 4.76},     // Amsterdam
	{"MAD", 40.47, -3.57},    // Madrid
	{"LIS", 38.77, -9.13},    // Lisbon
	{"FCO", 41.80, 12.25},    // Rome
	{"IST", 41.28, 28.75},    // Istanbul
	{"DME", 55.41, 37.90},    // Moscow
	{"GRU", -23.43, -46.47},  // São Paulo
	{"GIG", -22.81, -43.25},  // Rio de Janeiro
	{"EZE", -34.82, -58.54},  // Buenos Aires
	{"SCL", -33.39, -70.79},  // Santiago
	{"BOG", 4.70, -74.15},    // Bogotá
	{"LIM", -12.02, -77.11},  // Lima
	{"MEX", 19.44, -99.07},   // Mexico City
	{"REC", -8.13, -34.92},   // Recife (South Atlantic edge)
	{"JNB", -26.14, 28.25},   // Johannesburg
	{"CPT", -33.96, 18.60},   // Cape Town
	{"LOS", 6.58, 3.32},      // Lagos
	{"ACC", 5.61, -0.17},     // Accra
	{"DKR", 14.74, -17.49},   // Dakar
	{"CAI", 30.12, 31.41},    // Cairo
	{"ADD", 9.00, 38.80},     // Addis Ababa
	{"NBO", -1.32, 36.93},    // Nairobi
	{"DXB", 25.25, 55.36},    // Dubai
	{"DOH", 25.27, 51.61},    // Doha
	{"BOM", 19.09, 72.87},    // Mumbai
	{"DEL", 28.56, 77.10},    // Delhi
	{"SIN", 1.36, 103.99},    // Singapore
	{"KUL", 2.75, 101.71},    // Kuala Lumpur
	{"BKK", 13.69, 100.75},   // Bangkok
	{"HKG", 22.31, 113.91},   // Hong Kong
	{"PVG", 31.14, 121.81},   // Shanghai
	{"PEK", 40.08, 116.58},   // Beijing
	{"ICN", 37.46, 126.44},   // Seoul
	{"HND", 35.55, 139.78},   // Tokyo
	{"SYD", -33.95, 151.18},  // Sydney
	{"MEL", -37.67, 144.84},  // Melbourne
	{"BNE", -27.38, 153.12},  // Brisbane
	{"PER", -31.94, 115.97},  // Perth
	{"AKL", -37.01, 174.79},  // Auckland
	{"PPT", -17.56, -149.61}, // Papeete (South Pacific)
}

// AirportByCode returns the airport with the given IATA code, or false.
func AirportByCode(code string) (Airport, bool) {
	for _, a := range airports {
		if a.Code == code {
			return a, true
		}
	}
	return Airport{}, false
}

// Airports returns a copy of the airport catalogue.
func Airports() []Airport {
	out := make([]Airport, len(airports))
	copy(out, airports)
	return out
}
