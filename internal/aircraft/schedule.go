package aircraft

import (
	"fmt"
	"math/rand"
	"time"

	"leosim/internal/geo"
	"leosim/internal/ground"
)

const (
	// CruiseSpeedKmh is the assumed great-circle ground speed.
	CruiseSpeedKmh = 900.0
	// CruiseAltKm is the assumed cruise altitude.
	CruiseAltKm = 11.0
)

// Flight is one scheduled flight: a great-circle trip from A to B departing
// at a fixed offset into the (repeating) day.
type Flight struct {
	ID       int
	From, To Airport
	// DepOffset is the departure time as an offset into the schedule day.
	DepOffset time.Duration
	// Duration is the time spent en route.
	Duration time.Duration
	// DistKm is the great-circle trip length.
	DistKm float64
}

// Aircraft is an in-flight aircraft at a specific instant.
type Aircraft struct {
	FlightID int
	Name     string
	Pos      geo.LatLon // includes cruise altitude
}

// Fleet is a deterministic daily flight schedule. The schedule repeats every
// 24 h, so positions are defined for any time.
type Fleet struct {
	Flights []Flight
	day0    time.Time
}

// NewFleet builds the fleet from the route catalogue. densityScale scales
// every route's daily frequency (1 = calibrated default; reduced-scale tests
// use < 1, which drops the sparsest routes first only by rounding). The
// schedule day is anchored at geo.Epoch.
func NewFleet(densityScale float64) (*Fleet, error) {
	if densityScale <= 0 {
		return nil, fmt.Errorf("aircraft: density scale must be positive, got %v", densityScale)
	}
	rng := rand.New(rand.NewSource(1))
	f := &Fleet{day0: geo.Epoch}
	id := 0
	for _, r := range routes {
		from, ok := AirportByCode(r.From)
		if !ok {
			return nil, fmt.Errorf("aircraft: unknown airport %q", r.From)
		}
		to, ok := AirportByCode(r.To)
		if !ok {
			return nil, fmt.Errorf("aircraft: unknown airport %q", r.To)
		}
		dist := geo.GreatCircleKm(geo.LL(from.Lat, from.Lon), geo.LL(to.Lat, to.Lon))
		dur := time.Duration(dist / CruiseSpeedKmh * float64(time.Hour))
		n := int(float64(r.PerDay)*densityScale + 0.5)
		if n < 1 {
			n = 1
		}
		for _, dir := range [][2]Airport{{from, to}, {to, from}} {
			// Spread departures evenly with a random per-route phase so
			// corridors do not pulse in lockstep.
			phase := time.Duration(rng.Float64() * float64(24*time.Hour))
			gap := 24 * time.Hour / time.Duration(n)
			for i := 0; i < n; i++ {
				dep := (phase + time.Duration(i)*gap) % (24 * time.Hour)
				f.Flights = append(f.Flights, Flight{
					ID:        id,
					From:      dir[0],
					To:        dir[1],
					DepOffset: dep,
					Duration:  dur,
					DistKm:    dist,
				})
				id++
			}
		}
	}
	return f, nil
}

// positionAt returns the aircraft position of flight fl at time t, and
// whether the flight is airborne then. The schedule wraps daily; a flight
// spanning midnight is handled by also checking the previous day's departure.
func (f *Fleet) positionAt(fl Flight, t time.Time) (geo.LatLon, bool) {
	sinceDay0 := t.Sub(f.day0)
	if sinceDay0 < 0 {
		// Normalize into the schedule's repeating day.
		days := (-sinceDay0/(24*time.Hour) + 1)
		sinceDay0 += days * 24 * time.Hour
	}
	intoDay := sinceDay0 % (24 * time.Hour)
	for _, dep := range []time.Duration{fl.DepOffset, fl.DepOffset - 24*time.Hour} {
		el := intoDay - dep
		if el >= 0 && el <= fl.Duration {
			frac := float64(el) / float64(fl.Duration)
			p := geo.Intermediate(
				geo.LL(fl.From.Lat, fl.From.Lon),
				geo.LL(fl.To.Lat, fl.To.Lon), frac)
			p.Alt = CruiseAltKm
			return p, true
		}
	}
	return geo.LatLon{}, false
}

// ActiveAt returns all airborne aircraft at time t.
func (f *Fleet) ActiveAt(t time.Time) []Aircraft {
	var out []Aircraft
	for _, fl := range f.Flights {
		if p, ok := f.positionAt(fl, t); ok {
			out = append(out, Aircraft{
				FlightID: fl.ID,
				Name:     fmt.Sprintf("%s-%s/%d", fl.From.Code, fl.To.Code, fl.ID),
				Pos:      p,
			})
		}
	}
	return out
}

// OverWaterAt returns the airborne aircraft that are currently over water —
// the only ones the paper admits as transit relays ("We include only those
// aircraft as possible intermediate hops which are flying over water
// bodies", §3).
func (f *Fleet) OverWaterAt(t time.Time) []Aircraft {
	all := f.ActiveAt(t)
	out := all[:0]
	for _, a := range all {
		if ground.IsWater(a.Pos.Lat, a.Pos.Lon) {
			out = append(out, a)
		}
	}
	return out
}

// CountInBox counts aircraft from the list within a lat/lon box — used to
// verify corridor-density calibration.
func CountInBox(list []Aircraft, latMin, latMax, lonMin, lonMax float64) int {
	n := 0
	for _, a := range list {
		if a.Pos.Lat >= latMin && a.Pos.Lat <= latMax &&
			a.Pos.Lon >= lonMin && a.Pos.Lon <= lonMax {
			n++
		}
	}
	return n
}
