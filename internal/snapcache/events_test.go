package snapcache

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"leosim/internal/graph"
	"leosim/internal/telemetry"
)

// The cache narrates its whole lifecycle into the flight recorder: every
// build start/failure/success and every breaker transition, each carrying
// the triggering request's trace ID. Because all events for a build are
// emitted before its waiters are released, the sequence a caller observes
// after Get returns is deterministic.
func TestFlightRecorderNarratesBuildsAndBreaker(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	since := telemetry.LastEventSeq()

	clock := newFakeClock()
	var fail atomic.Bool
	fail.Store(true)
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		if fail.Load() {
			return nil, errors.New("backend down")
		}
		return tinyNet("ok"), nil
	}, Options{BreakerThreshold: 2, BreakerCooldown: 10 * time.Second, Clock: clock.Now})

	trace := telemetry.NewTraceID()
	ctx := telemetry.WithTraceID(context.Background(), trace)
	for i := 0; i < 2; i++ {
		c.Get(ctx, keyAt("s", i)) //nolint:errcheck // failures are the point
	}
	clock.Advance(11 * time.Second) // past the cooldown: next Get is the probe
	fail.Store(false)
	if _, err := c.Get(ctx, keyAt("s", 2)); err != nil {
		t.Fatalf("probe get: %v", err)
	}

	evs := telemetry.Events(telemetry.EventFilter{Cat: telemetry.CatAll, Since: since})
	var got []string
	for _, e := range evs {
		got = append(got, e.Cat.String()+"/"+e.Sev.String()+"/"+e.Msg)
		if e.Trace != trace {
			t.Errorf("event %q trace = %v, want the request's %v", e.Msg, e.Trace, trace)
		}
	}
	want := []string{
		"build/info/build start",
		"build/error/build failed",
		"build/info/build start",
		"build/error/build failed",
		"breaker/error/breaker open: consecutive build failures crossed threshold",
		"breaker/info/breaker half-open: probe build allowed",
		"build/info/build start",
		"build/info/build done",
		"breaker/info/breaker closed: build succeeded",
	}
	if len(got) != len(want) {
		t.Fatalf("event sequence:\n got %q\nwant %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// A build that exceeds its timeout leaves a warn event for the failed
// waiters and an info event when the late success is adopted anyway.
func TestFlightRecorderRecordsTimeoutAndLateAdoption(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	since := telemetry.LastEventSeq()

	release := make(chan struct{})
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		<-release
		return tinyNet("slow"), nil
	}, Options{BuildTimeout: 10 * time.Millisecond})

	if _, err := c.Get(context.Background(), keyAt("s", 0)); err == nil {
		t.Fatal("timed-out build returned no error")
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().LateBuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late build never adopted")
		}
		time.Sleep(time.Millisecond)
	}

	want := map[string]bool{
		"build timeout: waiters failed, late result still adoptable": false,
		"late build adopted after timeout":                           false,
	}
	for _, e := range telemetry.Events(telemetry.EventFilter{Cat: telemetry.CatBuild, Since: since}) {
		if _, ok := want[e.Msg]; ok {
			want[e.Msg] = true
		}
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("missing event %q", msg)
		}
	}
}
