package snapcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leosim/internal/fault"
	"leosim/internal/graph"
)

// fakeClock is the injectable clock all self-healing tests run on: TTL,
// stale windows and breaker cooldowns advance only when told to.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// An entry past its TTL but inside StaleFor is served immediately with
// Stale set, while exactly one background rebuild replaces it.
func TestStaleWhileRevalidate(t *testing.T) {
	clock := newFakeClock()
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet(fmt.Sprintf("b%d", builds.Load())), nil
	}, Options{TTL: time.Minute, StaleFor: time.Hour, Clock: clock.Now})
	ctx := context.Background()
	k := keyAt("s", 1)

	n1, info, err := c.GetEx(ctx, k)
	if err != nil || info.Stale {
		t.Fatalf("first get: err=%v stale=%v", err, info.Stale)
	}
	clock.Advance(61 * time.Second) // past TTL, inside StaleFor

	n2, info, err := c.GetEx(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Stale {
		t.Fatal("expired-but-valid entry not marked stale")
	}
	if n2 != n1 {
		t.Fatal("stale serve returned a different network than the resident entry")
	}
	// One background rebuild must land; after it, the entry is fresh again.
	waitFor(t, "background revalidation", func() bool { return builds.Load() == 2 })
	waitFor(t, "fresh entry after revalidation", func() bool {
		_, info, err := c.GetEx(ctx, k)
		return err == nil && !info.Stale
	})
	n3, _, _ := c.GetEx(ctx, k)
	if n3 == n1 {
		t.Fatal("revalidation did not replace the stale network")
	}
	if st := c.Stats(); st.StaleServes == 0 {
		t.Errorf("StaleServes = 0, want > 0")
	}
}

// Many concurrent stale hits elect exactly one revalidation build.
func TestStaleServesShareOneRevalidation(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		if builds.Add(1) > 1 {
			<-gate
		}
		return tinyNet("x"), nil
	}, Options{TTL: time.Minute, StaleFor: time.Hour, Clock: clock.Now})
	ctx := context.Background()
	k := keyAt("s", 1)
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)

	const N = 50
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, info, err := c.GetEx(ctx, k)
			if err != nil || !info.Stale {
				t.Errorf("stale get: err=%v stale=%v", err, info.Stale)
			}
		}()
	}
	wg.Wait()
	close(gate)
	waitFor(t, "revalidation to finish", func() bool {
		_, info, err := c.GetEx(ctx, k)
		return err == nil && !info.Stale
	})
	if b := builds.Load(); b != 2 {
		t.Fatalf("builds = %d, want 2 (initial + one shared revalidation)", b)
	}
	if st := c.Stats(); st.StaleServes < N {
		t.Errorf("StaleServes = %d, want ≥ %d", st.StaleServes, N)
	}
}

// Past TTL+StaleFor the entry is a hard miss again: no stale serves from
// beyond the grace window.
func TestStaleWindowHardExpiry(t *testing.T) {
	clock := newFakeClock()
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet("x"), nil
	}, Options{TTL: time.Minute, StaleFor: time.Minute, Clock: clock.Now})
	ctx := context.Background()
	k := keyAt("s", 1)
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Minute) // past TTL+StaleFor
	_, info, err := c.GetEx(ctx, k)
	if err != nil || info.Stale {
		t.Fatalf("hard-expired get: err=%v stale=%v (want fresh rebuild)", err, info.Stale)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", st.Expirations)
	}
}

// The breaker trips after the configured run of consecutive failures,
// fast-fails further misses with a Retry-After hint, half-opens after the
// cooldown, and closes again on a successful probe.
func TestBreakerTripsHalfOpensAndRecovers(t *testing.T) {
	clock := newFakeClock()
	var fail atomic.Bool
	fail.Store(true)
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		if fail.Load() {
			return nil, errors.New("backend down")
		}
		return tinyNet("ok"), nil
	}, Options{BreakerThreshold: 3, BreakerCooldown: 10 * time.Second, Clock: clock.Now})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, keyAt("s", i)); err == nil {
			t.Fatal("failing build returned no error")
		}
	}
	if br := c.Breaker(); br.State != BreakerOpen || br.FailureStreak != 3 {
		t.Fatalf("breaker after 3 failures = %+v, want open/streak 3", br)
	}

	// Open: no build happens, the error carries the remaining cooldown.
	clock.Advance(4 * time.Second)
	_, err := c.Get(ctx, keyAt("s", 99))
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("open-breaker err = %v, want *BreakerOpenError", err)
	}
	if boe.RetryAfter != 6*time.Second {
		t.Fatalf("RetryAfter = %v, want 6s", boe.RetryAfter)
	}
	if builds.Load() != 3 {
		t.Fatalf("open breaker still built: builds = %d", builds.Load())
	}

	// Cooldown over, backend healed: the next Get is the probe and closes
	// the breaker.
	clock.Advance(7 * time.Second)
	fail.Store(false)
	if _, err := c.Get(ctx, keyAt("s", 100)); err != nil {
		t.Fatalf("probe get: %v", err)
	}
	if br := c.Breaker(); br.State != BreakerClosed || br.FailureStreak != 0 {
		t.Fatalf("breaker after successful probe = %+v, want closed", br)
	}
	st := c.Stats()
	if st.FastFails != 1 || st.BreakerOpens != 1 {
		t.Errorf("stats = %+v, want FastFails=1 BreakerOpens=1", st)
	}
}

// A failed probe re-opens the breaker and restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return nil, errors.New("still down")
	}, Options{BreakerThreshold: 2, BreakerCooldown: 10 * time.Second, Clock: clock.Now})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.Get(ctx, keyAt("s", i)) //nolint:errcheck // failures are the point
	}
	if br := c.Breaker(); br.State != BreakerOpen {
		t.Fatalf("breaker = %v, want open", br.State)
	}
	clock.Advance(11 * time.Second)
	if _, err := c.Get(ctx, keyAt("s", 3)); err == nil {
		t.Fatal("probe against a dead backend should fail")
	}
	br := c.Breaker()
	if br.State != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open again", br.State)
	}
	if br.RetryAfter != 10*time.Second {
		t.Fatalf("cooldown after failed probe = %v, want restarted 10s", br.RetryAfter)
	}
}

// Stale entries keep serving while the breaker is open: the breaker guards
// build work, never reads.
func TestOpenBreakerStillServesStale(t *testing.T) {
	clock := newFakeClock()
	var fail atomic.Bool
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		if fail.Load() {
			return nil, errors.New("down")
		}
		return tinyNet("x"), nil
	}, Options{TTL: time.Minute, StaleFor: time.Hour,
		BreakerThreshold: 1, BreakerCooldown: time.Hour, Clock: clock.Now})
	ctx := context.Background()
	k := keyAt("s", 1)
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	// Trip the breaker on another key.
	if _, err := c.Get(ctx, keyAt("s", 2)); err == nil {
		t.Fatal("want failure")
	}
	if c.Breaker().State != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	clock.Advance(2 * time.Minute) // k is now stale
	n, info, err := c.GetEx(ctx, k)
	if err != nil || n == nil || !info.Stale {
		t.Fatalf("stale serve under open breaker: n=%v info=%+v err=%v", n, info, err)
	}
	// And a hard miss fast-fails instead of building.
	if _, _, err := c.GetEx(ctx, keyAt("s", 3)); !errors.As(err, new(*BreakerOpenError)) {
		t.Fatalf("miss under open breaker = %v, want BreakerOpenError", err)
	}
}

// A build that exceeds its timeout fails the waiters promptly — and when
// the build completes late anyway, its result is adopted into the cache.
func TestBuildTimeoutFailsFastAndAdoptsLateResult(t *testing.T) {
	gate := make(chan struct{})
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		<-gate // ignores ctx, like a wedged dependency
		return tinyNet("late"), nil
	}, Options{BuildTimeout: 30 * time.Millisecond})
	k := keyAt("s", 1)
	_, err := c.Get(context.Background(), k)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out build err = %v, want DeadlineExceeded", err)
	}
	if st := c.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
	close(gate)
	waitFor(t, "late adoption", func() bool { return c.Stats().LateBuilds == 1 })
	n, info, err := c.GetEx(context.Background(), k)
	if err != nil || n == nil || info.Stale {
		t.Fatalf("get after late adoption: n=%v info=%+v err=%v", n, info, err)
	}
	if c.Stats().Builds != 1 {
		t.Fatalf("builds = %d, want 1 (adopted, not rebuilt)", c.Stats().Builds)
	}
}

// Satellite regression: Purge racing an in-flight stale-revalidation build
// must not let the pre-purge result into the post-purge cache.
func TestPurgeRacesInFlightRevalidation(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		if builds.Add(1) == 2 {
			<-gate // hold the revalidation in flight
		}
		return tinyNet("x"), nil
	}, Options{TTL: time.Minute, StaleFor: time.Hour, Clock: clock.Now})
	ctx := context.Background()
	k := keyAt("s", 1)
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if _, info, err := c.GetEx(ctx, k); err != nil || !info.Stale {
		t.Fatalf("stale get: info=%+v err=%v", info, err)
	}
	waitFor(t, "revalidation in flight", func() bool { return builds.Load() == 2 })
	c.Purge()
	close(gate)
	// The revalidation's generation is stale: its result must never appear.
	time.Sleep(20 * time.Millisecond)
	if c.Len() != 0 {
		t.Fatalf("purged cache repopulated by stale revalidation (len=%d)", c.Len())
	}
	if c.Peek(k) {
		t.Fatal("purged key resident again")
	}
}

// Satellite regression: a TTL expiry "under" an in-flight singleflight
// build — the clock jumps past the TTL while the build runs. Waiters still
// share the one build, and the entry lands with a fresh builtAt so the
// next Get is a non-stale hit.
func TestTTLExpiryRacesInFlightBuild(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		<-gate
		return tinyNet("x"), nil
	}, Options{TTL: time.Minute, StaleFor: time.Hour, Clock: clock.Now})
	k := keyAt("s", 1)

	results := make(chan error, 2)
	go func() { _, err := c.Get(context.Background(), k); results <- err }()
	waitFor(t, "leader build in flight", func() bool { return builds.Load() == 1 })
	clock.Advance(5 * time.Minute) // TTL expires mid-build
	go func() { _, err := c.Get(context.Background(), k); results <- err }()
	waitFor(t, "follower waiting", func() bool { return c.Stats().Misses == 2 })
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1 shared build", builds.Load())
	}
	// builtAt is stamped at insert time (after the advance), so the entry
	// is fresh, not instantly expired.
	if _, info, err := c.GetEx(context.Background(), k); err != nil || info.Stale {
		t.Fatalf("entry stale right after insert: info=%+v err=%v", info, err)
	}
}

// Chaos harness at the cache layer: a seeded 30% build-failure injection.
// Clients that retry once on failure see ≥95% success; stale coverage means
// zero failures for keys that were ever resident. Deterministic by seed.
func TestChaosSeededFailureInjection(t *testing.T) {
	clock := newFakeClock()
	chaos := fault.NewChaos(1234, 0.30, 0, 0)
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet(k.String()), nil
	}, Options{
		TTL: 30 * time.Second, StaleFor: time.Hour,
		BuildHook: func(ctx context.Context, k Key) error { return chaos.BuildHook(ctx, k.String()) },
		Clock:     clock.Now,
	})
	ctx := context.Background()

	const keys = 6
	var attempts, successes, failuresAfterResident int
	resident := map[Key]bool{}
	for i := 0; i < 400; i++ {
		k := keyAt("chaos", i%keys)
		clock.Advance(7 * time.Second) // entries continually drift past TTL
		var err error
		for try := 0; try < 4; try++ { // bounded retry, like a backoff client
			attempts++
			_, _, err = c.GetEx(ctx, k)
			if err == nil {
				break
			}
			if resident[k] {
				failuresAfterResident++
			}
		}
		if err == nil {
			successes++
			resident[k] = true
		}
	}
	rate := float64(successes) / 400
	if rate < 0.95 {
		t.Fatalf("success rate %.3f under 30%% build-failure injection, want ≥0.95", rate)
	}
	if failuresAfterResident != 0 {
		t.Fatalf("%d failures for keys with stale coverage, want 0", failuresAfterResident)
	}
	if chaos.Fails() == 0 {
		t.Fatal("chaos injected nothing — test misconfigured")
	}
	t.Logf("chaos: %d attempts, %d/%d successes (%.1f%%), %d injected failures, %d builds",
		attempts, successes, 400, rate*100, chaos.Fails(), builds.Load())
}
