package snapcache

import (
	"context"
	"testing"
	"time"

	"leosim/internal/graph"
)

// TestAttachLifecycle pins the attachment contract: an artifact attaches
// only to the exact network it was derived from, is readable while the
// entry is servable, and dies with the entry.
func TestAttachLifecycle(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return tinyNet(k.String()), nil
	}, Options{})
	ctx := context.Background()
	key := keyAt("s", 1)
	n, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}

	// Attaching against the wrong network instance is refused.
	if c.Attach(key, tinyNet("other"), "artifact") {
		t.Fatal("Attach accepted an artifact derived from a different network")
	}
	// Attaching to an absent key is refused.
	if c.Attach(keyAt("s", 2), n, "artifact") {
		t.Fatal("Attach accepted a key with no resident entry")
	}
	if _, _, ok := c.Attachment(key); ok {
		t.Fatal("Attachment reports an artifact before any successful Attach")
	}

	if !c.Attach(key, n, "artifact") {
		t.Fatal("Attach refused the entry's own network")
	}
	aux, net, ok := c.Attachment(key)
	if !ok || aux != "artifact" || net != n {
		t.Fatalf("Attachment = (%v, %p, %v), want the attached artifact and its network", aux, net, ok)
	}
	st := c.Stats()
	if st.Attachments != 1 || st.AttachMisses != 2 {
		t.Fatalf("stats: %d attachments, %d misses (want 1, 2)", st.Attachments, st.AttachMisses)
	}

	// Purge drops the entry and the artifact with it.
	c.Purge()
	if _, _, ok := c.Attachment(key); ok {
		t.Fatal("attachment survived Purge")
	}
}

// TestAttachClearedOnRefresh pins the refresh rule: re-inserting a
// *different* network under the same key clears the attachment (the
// artifact described the old graph), while a same-pointer refresh keeps it.
func TestAttachClearedOnRefresh(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return tinyNet(k.String()), nil
	}, Options{})
	key := keyAt("s", 1)
	n1 := tinyNet("first")
	c.Put(key, n1)
	if !c.Attach(key, n1, "artifact") {
		t.Fatal("Attach refused a primed entry")
	}

	// Same network re-deposited: the artifact still describes it.
	c.Put(key, n1)
	if _, _, ok := c.Attachment(key); !ok {
		t.Fatal("same-network refresh dropped the attachment")
	}

	// A genuinely new network: the artifact must go.
	n2 := tinyNet("second")
	c.Put(key, n2)
	if _, _, ok := c.Attachment(key); ok {
		t.Fatal("attachment survived a refresh with a different network")
	}
	// And the old network no longer accepts attaches under this key.
	if c.Attach(key, n1, "artifact") {
		t.Fatal("Attach accepted the superseded network")
	}
}

// TestAttachEvicted pins LRU coupling: when capacity evicts an entry, its
// attachment goes with it.
func TestAttachEvicted(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return tinyNet(k.String()), nil
	}, Options{Capacity: 1})
	k1, k2 := keyAt("s", 1), keyAt("s", 2)
	n1 := tinyNet("one")
	c.Put(k1, n1)
	if !c.Attach(k1, n1, "artifact") {
		t.Fatal("Attach refused resident entry")
	}
	c.Put(k2, tinyNet("two")) // capacity 1: evicts k1
	if _, _, ok := c.Attachment(k1); ok {
		t.Fatal("attachment survived eviction")
	}
}

// TestAttachmentTTLWindow pins expiry coupling: the attachment is servable
// exactly as long as its entry is (TTL + StaleFor), then becomes a miss.
func TestAttachmentTTLWindow(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return tinyNet(k.String()), nil
	}, Options{TTL: 10 * time.Second, StaleFor: 5 * time.Second, Clock: clock})
	key := keyAt("s", 1)
	n := tinyNet("ttl")
	c.Put(key, n)
	if !c.Attach(key, n, "artifact") {
		t.Fatal("Attach refused fresh entry")
	}

	now = now.Add(9 * time.Second) // fresh
	if _, _, ok := c.Attachment(key); !ok {
		t.Fatal("attachment missing within TTL")
	}
	now = now.Add(3 * time.Second) // expired but within StaleFor
	if _, _, ok := c.Attachment(key); !ok {
		t.Fatal("attachment missing in the stale-while-revalidate window")
	}
	now = now.Add(4 * time.Second) // past TTL+StaleFor
	if _, _, ok := c.Attachment(key); ok {
		t.Fatal("attachment served past TTL+StaleFor")
	}
}
