// Package snapcache is a concurrency-safe cache of frozen per-snapshot
// network graphs, keyed by (scenario, time, fault-mask). It is the shared
// substrate of the serving subsystem: many concurrent queries against the
// same constellation epoch must route over one graph built once, not once
// per request.
//
// Mechanisms, composing from plain caching to self-healing:
//
//   - Singleflight: concurrent Gets for the same key elect one builder; the
//     rest wait for its result. A waiter whose context expires gives up
//     early, but the build itself keeps running and populates the cache —
//     work already paid for is never thrown away.
//   - LRU: a bounded number of snapshots stay resident; the
//     least-recently-used entry is evicted when a new one arrives.
//   - TTL: entries older than the configured lifetime are rebuilt on next
//     access, which bounds staleness when the backing scenario can change
//     (a zero TTL disables expiry — snapshot graphs for a fixed scenario
//     are immutable).
//   - Stale-while-revalidate: an entry past its TTL but within StaleFor is
//     served immediately, marked Stale, while one background rebuild runs.
//     Readers never block on — or 5xx because of — a refresh that the old
//     answer could absorb.
//   - Build timeout: each build gets a deadline. A timed-out build fails
//     its waiters promptly, but if the build later completes anyway its
//     result is adopted into the cache (self-healing, not wasted).
//   - Circuit breaker: consecutive build failures trip the cache open;
//     further misses fail fast with a BreakerOpenError carrying a
//     Retry-After hint instead of hammering a broken backend. After a
//     cooldown one probe build half-opens the breaker; success closes it.
//     Stale entries keep serving throughout — the breaker only guards
//     *new* build work.
package snapcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leosim/internal/graph"
	"leosim/internal/telemetry"
)

// Key identifies one snapshot graph. Two Gets with equal keys always share
// one build and one cached network.
type Key struct {
	// Scenario namespaces the cache: constellation, scale, connectivity
	// mode — everything that changes the graph apart from time and faults
	// (e.g. "starlink/reduced/hybrid").
	Scenario string
	// Time is the snapshot instant.
	Time time.Time
	// Mask fingerprints the fault mask applied to the snapshot ("" = none).
	// Distinct fault realizations must use distinct fingerprints.
	Mask string
}

// String renders the key for logs and metrics.
func (k Key) String() string {
	if k.Mask == "" {
		return fmt.Sprintf("%s@%s", k.Scenario, k.Time.Format(time.RFC3339))
	}
	return fmt.Sprintf("%s@%s+%s", k.Scenario, k.Time.Format(time.RFC3339), k.Mask)
}

// BuildFunc constructs the network for a key. It runs at most once per key
// at a time (singleflight); the context is detached from any single
// caller's cancellation, so a build outlives the request that triggered it.
type BuildFunc func(ctx context.Context, key Key) (*graph.Network, error)

// Options tune a Cache.
type Options struct {
	// Capacity bounds resident entries (default 16; minimum 1).
	Capacity int
	// TTL expires entries this long after their build completed; zero
	// means entries never expire.
	TTL time.Duration
	// StaleFor extends each entry's life past its TTL: within the window
	// the stale entry is served (marked Stale) while a background rebuild
	// runs; past it the entry is a hard miss. Zero disables
	// stale-while-revalidate. Ignored when TTL is zero.
	StaleFor time.Duration
	// BuildTimeout bounds each build. A build that exceeds it fails its
	// waiters with context.DeadlineExceeded (feeding the breaker), but a
	// late successful result is still adopted into the cache. Zero means
	// no bound.
	BuildTimeout time.Duration
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive build failures; zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting one
	// probe build through (default 5s when the breaker is enabled).
	BreakerCooldown time.Duration
	// BuildHook, when non-nil, runs at the start of every build (in the
	// build goroutine). An error or panic fails the build exactly as if
	// the BuildFunc had failed — the chaos-injection point. The context is
	// the build's detached context; it still carries the triggering
	// request's trace ID, so injected faults are joinable to requests.
	BuildHook func(ctx context.Context, key Key) error
	// Clock overrides time.Now for TTL/breaker tests.
	Clock func() time.Time
}

// Stats are cumulative cache counters. Hits+Misses counts Gets; Builds
// counts invocations of the build function (Misses > Builds when
// singleflight coalesced concurrent misses). StaleServes counts hits
// served past TTL under stale-while-revalidate (also included in Hits).
type Stats struct {
	Hits, Misses, Builds, Evictions, Expirations, Errors int64
	// StaleServes counts Gets answered with an expired-but-valid entry.
	StaleServes int64
	// Attachments counts successful Attach calls (derived artifacts —
	// e.g. distance oracles — keyed to entry lifecycles).
	Attachments int64
	// AttachMisses counts Attach calls rejected because the entry was gone
	// or its network had been replaced since the artifact was derived.
	AttachMisses int64
	// Primed counts entries inserted ready-made via Put (cache priming)
	// rather than built on demand.
	Primed int64
	// Timeouts counts builds that exceeded BuildTimeout.
	Timeouts int64
	// LateBuilds counts timed-out builds whose eventual success was
	// adopted into the cache anyway.
	LateBuilds int64
	// FastFails counts Gets rejected by an open breaker without a build.
	FastFails int64
	// BreakerOpens counts closed→open transitions.
	BreakerOpens int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first Get.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Info describes how a Get was answered.
type Info struct {
	// Stale is set when the entry was served past its TTL while a
	// background rebuild proceeds (stale-while-revalidate).
	Stale bool
	// Age is how long ago the served entry was built (zero for an entry
	// built by this very Get).
	Age time.Duration
}

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: builds flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: one probe build is in flight; other misses fast-fail.
	BreakerHalfOpen
	// BreakerOpen: misses fast-fail until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerStatus snapshots the breaker for metrics and Retry-After hints.
type BreakerStatus struct {
	State BreakerState
	// FailureStreak is the current run of consecutive build failures.
	FailureStreak int64
	// RetryAfter estimates when a build is worth attempting again: zero
	// when closed, the remaining cooldown when open.
	RetryAfter time.Duration
}

// BreakerOpenError is returned by Get when the circuit breaker rejects a
// build without attempting it.
type BreakerOpenError struct {
	// RetryAfter is the cooldown remaining before the next probe.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("snapcache: circuit breaker open (retry in %s)", e.RetryAfter.Round(time.Millisecond))
}

type entry struct {
	n       *graph.Network
	builtAt time.Time
	elem    *list.Element // position in the LRU list; Value is the Key
	// aux is the attachment riding this entry (a derived artifact such as a
	// distance oracle built from n). It shares the entry's whole lifecycle:
	// eviction, hard expiry and Purge drop it with the entry, and a rebuild
	// that replaces n clears it — an attachment never outlives, or
	// mismatches, the snapshot it was derived from.
	aux any
}

// call is one in-flight singleflight build.
type call struct {
	done chan struct{}
	n    *graph.Network
	err  error
	// gen is the cache generation the call started in; Purge bumps the
	// generation so a build begun against the old scenario completes for
	// its waiters but is not inserted into the purged cache.
	gen uint64
}

// Cache is the snapshot cache. The zero value is not usable; call New.
type Cache struct {
	build        BuildFunc
	hook         func(context.Context, Key) error
	cap          int
	ttl          time.Duration
	staleFor     time.Duration
	buildTimeout time.Duration
	brThreshold  int
	brCooldown   time.Duration
	now          func() time.Time

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recently used
	inflight map[Key]*call
	gen      uint64 // bumped by Purge; guards stale in-flight inserts

	// Breaker state, guarded by mu.
	streak   int64 // consecutive build failures
	brOpen   bool
	brProbe  bool // a half-open probe build is in flight
	openedAt time.Time

	hits, misses, builds, evictions, expirations, errors atomic.Int64
	staleServes, timeouts, lateBuilds, primed            atomic.Int64
	fastFails, breakerOpens                              atomic.Int64
	attachments, attachMisses                            atomic.Int64
}

// New creates a cache that builds missing snapshots with build.
func New(build BuildFunc, opts Options) *Cache {
	if build == nil {
		panic("snapcache: nil BuildFunc")
	}
	if opts.Capacity < 1 {
		opts.Capacity = 16
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.BreakerThreshold > 0 && opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	return &Cache{
		build:        build,
		hook:         opts.BuildHook,
		cap:          opts.Capacity,
		ttl:          opts.TTL,
		staleFor:     opts.StaleFor,
		buildTimeout: opts.BuildTimeout,
		brThreshold:  opts.BreakerThreshold,
		brCooldown:   opts.BreakerCooldown,
		now:          opts.Clock,
		entries:      map[Key]*entry{},
		lru:          list.New(),
		inflight:     map[Key]*call{},
	}
}

// Get returns the cached network for key, building it (once, regardless of
// how many goroutines ask concurrently) on a miss. It returns ctx.Err()
// without a network if ctx is done before the build finishes; the build is
// not abandoned on behalf of one impatient caller.
func (c *Cache) Get(ctx context.Context, key Key) (*graph.Network, error) {
	n, _, err := c.GetEx(ctx, key)
	return n, err
}

// GetEx is Get plus an Info describing how the request was answered —
// notably whether the served snapshot is stale (expired but inside the
// stale-while-revalidate window, with a background rebuild in motion).
func (c *Cache) GetEx(ctx context.Context, key Key) (*graph.Network, Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, Info{}, err
	}
	// The span's stage is classified at the end — the lookup's outcome (hit,
	// singleflight wait, or leader miss) is not known at entry.
	sp := telemetry.StartSpan(ctx, telemetry.StageCacheHit)
	c.mu.Lock()
	now := c.now()
	if e, ok := c.entries[key]; ok {
		age := now.Sub(e.builtAt)
		switch {
		case c.ttl <= 0 || age < c.ttl:
			c.lru.MoveToFront(e.elem)
			c.hits.Add(1)
			n := e.n
			c.mu.Unlock()
			sp.EndAs(telemetry.StageCacheHit)
			return n, Info{Age: age}, nil
		case c.staleFor > 0 && age < c.ttl+c.staleFor:
			// Expired but servable: answer now, refresh in the background.
			c.lru.MoveToFront(e.elem)
			c.hits.Add(1)
			c.staleServes.Add(1)
			c.revalidateLocked(ctx, key, now)
			n := e.n
			c.mu.Unlock()
			sp.EndAs(telemetry.StageCacheHit)
			return n, Info{Stale: true, Age: age}, nil
		default:
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.expirations.Add(1)
		}
	}
	c.misses.Add(1)
	if cl, ok := c.inflight[key]; ok {
		// Someone else is already building this snapshot; wait for them.
		c.mu.Unlock()
		defer sp.EndAs(telemetry.StageCacheWait)
		select {
		case <-cl.done:
			return cl.n, Info{}, cl.err
		case <-ctx.Done():
			return nil, Info{}, ctx.Err()
		}
	}
	if allow, retry := c.allowBuildLocked(ctx, now); !allow {
		c.fastFails.Add(1)
		c.mu.Unlock()
		sp.EndAs(telemetry.StageCacheMiss)
		return nil, Info{}, &BreakerOpenError{RetryAfter: retry}
	}
	cl := c.startBuildLocked(ctx, key)
	c.mu.Unlock()

	defer sp.EndAs(telemetry.StageCacheMiss)
	select {
	case <-cl.done:
		return cl.n, Info{}, cl.err
	case <-ctx.Done():
		return nil, Info{}, ctx.Err()
	}
}

// GetCached returns the resident entry for key if one exists within its
// servable window (TTL, extended by StaleFor), without ever building. It
// is the degraded-fallback probe: "do we have *anything* usable for this
// key right now?". No counters move and no revalidation starts.
func (c *Cache) GetCached(key Key) (*graph.Network, Info, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, Info{}, false
	}
	age := c.now().Sub(e.builtAt)
	if c.ttl > 0 && age >= c.ttl+c.staleFor {
		return nil, Info{}, false
	}
	return e.n, Info{Stale: c.ttl > 0 && age >= c.ttl, Age: age}, true
}

// revalidateLocked kicks one background rebuild for a stale key, if none is
// in flight and the breaker permits. Nobody waits on it; the stale entry
// keeps serving until the rebuild lands (or hard expiry wins).
func (c *Cache) revalidateLocked(ctx context.Context, key Key, now time.Time) {
	if _, busy := c.inflight[key]; busy {
		return
	}
	if allow, _ := c.allowBuildLocked(ctx, now); !allow {
		return
	}
	c.startBuildLocked(ctx, key)
}

// allowBuildLocked asks the breaker whether a build may start now. When it
// may not, the returned duration is the caller-facing Retry-After hint.
func (c *Cache) allowBuildLocked(ctx context.Context, now time.Time) (bool, time.Duration) {
	if c.brThreshold <= 0 || !c.brOpen {
		return true, 0
	}
	if c.brProbe {
		// A probe is already in flight; its outcome decides the breaker.
		return false, c.brCooldown
	}
	if elapsed := now.Sub(c.openedAt); elapsed >= c.brCooldown {
		c.brProbe = true // this build is the half-open probe
		telemetry.EmitEvent(ctx, telemetry.CatBreaker, telemetry.SevInfo,
			"breaker half-open: probe build allowed",
			telemetry.Int64("streak", c.streak))
		return true, 0
	} else {
		return false, c.brCooldown - elapsed
	}
}

// recordBuildLocked feeds one build outcome into the breaker, emitting a
// flight-recorder event at every state transition.
func (c *Cache) recordBuildLocked(ctx context.Context, err error) {
	if err == nil {
		if c.brOpen {
			telemetry.EmitEvent(ctx, telemetry.CatBreaker, telemetry.SevInfo,
				"breaker closed: build succeeded",
				telemetry.Int64("streak", c.streak))
		}
		c.streak = 0
		c.brOpen, c.brProbe = false, false
		return
	}
	c.streak++
	if c.brProbe {
		// The probe failed: stay open, restart the cooldown.
		c.brProbe = false
		c.openedAt = c.now()
		telemetry.EmitEvent(ctx, telemetry.CatBreaker, telemetry.SevWarn,
			"breaker reopened: probe build failed",
			telemetry.Int64("streak", c.streak))
		return
	}
	if c.brThreshold > 0 && c.streak >= int64(c.brThreshold) && !c.brOpen {
		c.brOpen = true
		c.openedAt = c.now()
		c.breakerOpens.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatBreaker, telemetry.SevError,
			"breaker open: consecutive build failures crossed threshold",
			telemetry.Int64("streak", c.streak),
			telemetry.Int64("cooldownMs", c.brCooldown.Milliseconds()))
	}
}

// startBuildLocked registers and launches one detached singleflight build.
func (c *Cache) startBuildLocked(ctx context.Context, key Key) *call {
	cl := &call{done: make(chan struct{}), gen: c.gen}
	c.inflight[key] = cl
	// Build detached from the leader's cancellation: followers with live
	// contexts — and the next request for this key — still want the result.
	go c.runBuild(context.WithoutCancel(ctx), key, cl)
	return cl
}

type buildResult struct {
	n   *graph.Network
	err error
}

// runBuild executes one build under the hook, panic recovery and the
// timeout budget, then publishes the outcome. The whole lifecycle lands in
// the flight recorder; ctx (detached, but value-preserving) carries the
// triggering request's trace ID into every event.
func (c *Cache) runBuild(ctx context.Context, key Key, cl *call) {
	c.builds.Add(1)
	start := c.now()
	telemetry.EmitEvent(ctx, telemetry.CatBuild, telemetry.SevInfo,
		"build start", telemetry.Str("key", key.String()))
	bctx, cancel := ctx, context.CancelFunc(func() {})
	if c.buildTimeout > 0 {
		bctx, cancel = context.WithTimeout(ctx, c.buildTimeout)
	}
	resc := make(chan buildResult, 1)
	go func() {
		defer func() {
			// A panicking build must not strand waiters on a never-closed
			// channel; surface it as an error to every waiter instead.
			if r := recover(); r != nil {
				resc <- buildResult{err: fmt.Errorf("snapcache: build %s panicked: %v", key, r)}
			}
		}()
		if c.hook != nil {
			if err := c.hook(ctx, key); err != nil {
				resc <- buildResult{err: err}
				return
			}
		}
		n, err := c.build(bctx, key)
		resc <- buildResult{n: n, err: err}
	}()
	select {
	case r := <-resc:
		cancel()
		cl.n, cl.err = r.n, r.err
		durMs := c.now().Sub(start).Milliseconds()
		if cl.err != nil {
			telemetry.EmitEvent(ctx, telemetry.CatBuild, telemetry.SevError,
				"build failed",
				telemetry.Str("key", key.String()),
				telemetry.Str("err", cl.err.Error()),
				telemetry.Int64("durMs", durMs))
		} else {
			telemetry.EmitEvent(ctx, telemetry.CatBuild, telemetry.SevInfo,
				"build done",
				telemetry.Str("key", key.String()),
				telemetry.Int64("durMs", durMs))
		}
	case <-bctx.Done():
		// Timed out: fail the waiters now, but adopt the result if the
		// build eventually succeeds anyway — the work is already paid for.
		c.timeouts.Add(1)
		cl.err = fmt.Errorf("snapcache: build %s: %w", key, bctx.Err())
		telemetry.EmitEvent(ctx, telemetry.CatBuild, telemetry.SevWarn,
			"build timeout: waiters failed, late result still adoptable",
			telemetry.Str("key", key.String()),
			telemetry.Int64("timeoutMs", c.buildTimeout.Milliseconds()))
		gen := cl.gen
		go func() {
			defer cancel()
			if r := <-resc; r.err == nil && r.n != nil {
				c.adoptLate(ctx, key, r.n, gen)
			}
		}()
	}
	c.finish(ctx, key, cl)
}

// finish publishes a completed build: on success the entry enters the LRU
// (replacing a stale predecessor, evicting the coldest if over capacity);
// errors are not cached, so the next Get retries. Either way the outcome
// feeds the breaker.
func (c *Cache) finish(ctx context.Context, key Key, cl *call) {
	c.mu.Lock()
	delete(c.inflight, key)
	c.recordBuildLocked(ctx, cl.err)
	if cl.err != nil {
		c.errors.Add(1)
	} else if cl.gen == c.gen {
		c.insertLocked(key, cl.n)
	}
	c.mu.Unlock()
	close(cl.done)
}

// insertLocked puts a freshly built network into the LRU, refreshing an
// existing (stale) entry in place rather than duplicating it. Refreshing
// with a different network drops the entry's attachment: the artifact was
// derived from the old graph and must not describe the new one.
func (c *Cache) insertLocked(key Key, n *graph.Network) {
	if e, ok := c.entries[key]; ok {
		if e.n != n {
			e.aux = nil
		}
		e.n = n
		e.builtAt = c.now()
		c.lru.MoveToFront(e.elem)
		return
	}
	for c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(Key))
		c.evictions.Add(1)
	}
	c.entries[key] = &entry{n: n, builtAt: c.now(), elem: c.lru.PushFront(key)}
}

// adoptLate inserts the success of a build whose waiters already saw a
// timeout, unless a Purge invalidated its generation meanwhile. The late
// success also counts as one for the breaker: the backend works, slowly.
func (c *Cache) adoptLate(ctx context.Context, key Key, n *graph.Network, gen uint64) {
	c.mu.Lock()
	adopted := gen == c.gen
	if adopted {
		c.insertLocked(key, n)
		c.lateBuilds.Add(1)
		c.recordBuildLocked(ctx, nil)
	}
	c.mu.Unlock()
	if adopted {
		telemetry.EmitEvent(ctx, telemetry.CatBuild, telemetry.SevInfo,
			"late build adopted after timeout",
			telemetry.Str("key", key.String()))
	}
}

// Put inserts a ready-made network for key without running a build — the
// cache-priming path: a background walker advances the day incrementally and
// deposits snapshot clones far cheaper than the cold builds on-demand misses
// would pay. The entry enters the LRU exactly as a built one would
// (refreshing an existing entry in place, evicting the coldest over
// capacity). A singleflight build already in flight for key is untouched;
// its own insert simply refreshes the entry when it lands.
func (c *Cache) Put(key Key, n *graph.Network) {
	if n == nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(key, n)
	c.mu.Unlock()
	c.primed.Add(1)
}

// Attach associates a derived artifact (e.g. a distance oracle) with the
// resident entry for key, provided the entry still holds exactly the network
// n it was derived from. Pointer identity is the generation guard: a rebuild,
// Purge, eviction or TTL expiry between deriving the artifact and attaching
// it makes the attach a no-op (returning false) rather than pinning a result
// about a graph the cache no longer serves. The attachment is dropped
// whenever its entry is — it rides the same LRU/TTL/generation lifecycle.
func (c *Cache) Attach(key Key, n *graph.Network, aux any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.n != n {
		c.attachMisses.Add(1)
		return false
	}
	e.aux = aux
	c.attachments.Add(1)
	return true
}

// Attachment returns key's attachment and the network it was derived from,
// if the entry is resident, servable (within TTL+StaleFor) and carries one.
// LRU order and counters are untouched — like GetCached, this is a probe.
func (c *Cache) Attachment(key Key) (any, *graph.Network, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.aux == nil {
		return nil, nil, false
	}
	if c.ttl > 0 && c.now().Sub(e.builtAt) >= c.ttl+c.staleFor {
		return nil, nil, false
	}
	return e.aux, e.n, true
}

// Peek reports whether key is resident without touching LRU order or
// counters (tests and metrics). Stale-but-servable entries count.
func (c *Cache) Peek(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && !(c.ttl > 0 && c.now().Sub(e.builtAt) >= c.ttl+c.staleFor)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every resident entry and marks in-flight builds stale: they
// still complete for their waiters but are not inserted afterwards. Used
// when the backing scenario changes under the cache — a builder swap or a
// segment mutation.
func (c *Cache) Purge() {
	c.mu.Lock()
	c.entries = map[Key]*entry{}
	c.lru.Init()
	c.gen++
	c.mu.Unlock()
}

// Generation returns the current cache generation — the counter Purge bumps
// to invalidate in-flight builds. Health endpoints surface it so operators
// can tell "same cache since boot" from "purged N times".
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Breaker snapshots the circuit breaker's state.
func (c *Cache) Breaker() BreakerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := BreakerStatus{FailureStreak: c.streak}
	switch {
	case !c.brOpen:
		st.State = BreakerClosed
	case c.brProbe:
		st.State = BreakerHalfOpen
		st.RetryAfter = c.brCooldown
	default:
		st.State = BreakerOpen
		if remaining := c.brCooldown - c.now().Sub(c.openedAt); remaining > 0 {
			st.RetryAfter = remaining
		}
	}
	return st
}

// Stats snapshots the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Builds:       c.builds.Load(),
		Evictions:    c.evictions.Load(),
		Expirations:  c.expirations.Load(),
		Errors:       c.errors.Load(),
		StaleServes:  c.staleServes.Load(),
		Primed:       c.primed.Load(),
		Timeouts:     c.timeouts.Load(),
		LateBuilds:   c.lateBuilds.Load(),
		FastFails:    c.fastFails.Load(),
		BreakerOpens: c.breakerOpens.Load(),
		Attachments:  c.attachments.Load(),
		AttachMisses: c.attachMisses.Load(),
	}
}
