// Package snapcache is a concurrency-safe cache of frozen per-snapshot
// network graphs, keyed by (scenario, time, fault-mask). It is the shared
// substrate of the serving subsystem: many concurrent queries against the
// same constellation epoch must route over one graph built once, not once
// per request.
//
// Three mechanisms compose:
//
//   - Singleflight: concurrent Gets for the same key elect one builder; the
//     rest wait for its result. A waiter whose context expires gives up
//     early, but the build itself keeps running and populates the cache —
//     work already paid for is never thrown away.
//   - LRU: a bounded number of snapshots stay resident; the
//     least-recently-used entry is evicted when a new one arrives.
//   - TTL: entries older than the configured lifetime are rebuilt on next
//     access, which bounds staleness when the backing scenario can change
//     (a zero TTL disables expiry — snapshot graphs for a fixed scenario
//     are immutable).
package snapcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leosim/internal/graph"
	"leosim/internal/telemetry"
)

// Key identifies one snapshot graph. Two Gets with equal keys always share
// one build and one cached network.
type Key struct {
	// Scenario namespaces the cache: constellation, scale, connectivity
	// mode — everything that changes the graph apart from time and faults
	// (e.g. "starlink/reduced/hybrid").
	Scenario string
	// Time is the snapshot instant.
	Time time.Time
	// Mask fingerprints the fault mask applied to the snapshot ("" = none).
	// Distinct fault realizations must use distinct fingerprints.
	Mask string
}

// String renders the key for logs and metrics.
func (k Key) String() string {
	if k.Mask == "" {
		return fmt.Sprintf("%s@%s", k.Scenario, k.Time.Format(time.RFC3339))
	}
	return fmt.Sprintf("%s@%s+%s", k.Scenario, k.Time.Format(time.RFC3339), k.Mask)
}

// BuildFunc constructs the network for a key. It runs at most once per key
// at a time (singleflight); the context is detached from any single
// caller's cancellation, so a build outlives the request that triggered it.
type BuildFunc func(ctx context.Context, key Key) (*graph.Network, error)

// Options tune a Cache.
type Options struct {
	// Capacity bounds resident entries (default 16; minimum 1).
	Capacity int
	// TTL expires entries this long after their build completed; zero
	// means entries never expire.
	TTL time.Duration
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

// Stats are cumulative cache counters. Hits+Misses counts Gets; Builds
// counts invocations of the build function (Misses > Builds when
// singleflight coalesced concurrent misses).
type Stats struct {
	Hits, Misses, Builds, Evictions, Expirations, Errors int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first Get.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type entry struct {
	n       *graph.Network
	builtAt time.Time
	elem    *list.Element // position in the LRU list; Value is the Key
}

// call is one in-flight singleflight build.
type call struct {
	done chan struct{}
	n    *graph.Network
	err  error
	// gen is the cache generation the call started in; Purge bumps the
	// generation so a build begun against the old scenario completes for
	// its waiters but is not inserted into the purged cache.
	gen uint64
}

// Cache is the snapshot cache. The zero value is not usable; call New.
type Cache struct {
	build BuildFunc
	cap   int
	ttl   time.Duration
	now   func() time.Time

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recently used
	inflight map[Key]*call
	gen      uint64 // bumped by Purge; guards stale in-flight inserts

	hits, misses, builds, evictions, expirations, errors atomic.Int64
}

// New creates a cache that builds missing snapshots with build.
func New(build BuildFunc, opts Options) *Cache {
	if build == nil {
		panic("snapcache: nil BuildFunc")
	}
	if opts.Capacity < 1 {
		opts.Capacity = 16
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Cache{
		build:    build,
		cap:      opts.Capacity,
		ttl:      opts.TTL,
		now:      opts.Clock,
		entries:  map[Key]*entry{},
		lru:      list.New(),
		inflight: map[Key]*call{},
	}
}

// Get returns the cached network for key, building it (once, regardless of
// how many goroutines ask concurrently) on a miss. It returns ctx.Err()
// without a network if ctx is done before the build finishes; the build is
// not abandoned on behalf of one impatient caller.
func (c *Cache) Get(ctx context.Context, key Key) (*graph.Network, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The span's stage is classified at the end — the lookup's outcome (hit,
	// singleflight wait, or leader miss) is not known at entry.
	sp := telemetry.StartSpan(ctx, telemetry.StageCacheHit)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if c.ttl > 0 && c.now().Sub(e.builtAt) >= c.ttl {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.expirations.Add(1)
		} else {
			c.lru.MoveToFront(e.elem)
			c.hits.Add(1)
			c.mu.Unlock()
			sp.EndAs(telemetry.StageCacheHit)
			return e.n, nil
		}
	}
	c.misses.Add(1)
	if cl, ok := c.inflight[key]; ok {
		// Someone else is already building this snapshot; wait for them.
		c.mu.Unlock()
		defer sp.EndAs(telemetry.StageCacheWait)
		select {
		case <-cl.done:
			return cl.n, cl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{}), gen: c.gen}
	c.inflight[key] = cl
	c.mu.Unlock()

	// Build detached from the leader's cancellation: followers with live
	// contexts — and the next request for this key — still want the result.
	go func() {
		defer func() {
			// A panicking build must not strand waiters on a never-closed
			// channel; surface it as an error to every waiter instead.
			if r := recover(); r != nil {
				cl.err = fmt.Errorf("snapcache: build %s panicked: %v", key, r)
				c.finish(key, cl)
			}
		}()
		c.builds.Add(1)
		cl.n, cl.err = c.build(context.WithoutCancel(ctx), key)
		c.finish(key, cl)
	}()

	defer sp.EndAs(telemetry.StageCacheMiss)
	select {
	case <-cl.done:
		return cl.n, cl.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// finish publishes a completed build: on success the entry enters the LRU
// (evicting the coldest if over capacity); errors are not cached, so the
// next Get retries.
func (c *Cache) finish(key Key, cl *call) {
	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err != nil {
		c.errors.Add(1)
	} else if _, exists := c.entries[key]; !exists && cl.gen == c.gen {
		for c.lru.Len() >= c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(Key))
			c.evictions.Add(1)
		}
		c.entries[key] = &entry{n: cl.n, builtAt: c.now(), elem: c.lru.PushFront(key)}
	}
	c.mu.Unlock()
	close(cl.done)
}

// Peek reports whether key is resident without touching LRU order or
// counters (tests and metrics).
func (c *Cache) Peek(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && !(c.ttl > 0 && c.now().Sub(e.builtAt) >= c.ttl)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every resident entry and marks in-flight builds stale: they
// still complete for their waiters but are not inserted afterwards. Used
// when the backing scenario changes under the cache — a builder swap or a
// segment mutation.
func (c *Cache) Purge() {
	c.mu.Lock()
	c.entries = map[Key]*entry{}
	c.lru.Init()
	c.gen++
	c.mu.Unlock()
}

// Stats snapshots the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Builds:      c.builds.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Errors:      c.errors.Load(),
	}
}
