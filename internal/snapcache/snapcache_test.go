package snapcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// tinyNet builds a distinguishable 2-node network; the node name encodes the
// key so tests can verify which build produced a cached graph.
func tinyNet(label string) *graph.Network {
	n := &graph.Network{}
	a := n.AddNode(graph.NodeCity, geo.Vec3{X: 6371}, label)
	b := n.AddNode(graph.NodeCity, geo.Vec3{Y: 6371}, label+"-b")
	n.AddLink(a, b, graph.LinkFiber, 1)
	return n
}

func keyAt(scenario string, sec int) Key {
	return Key{Scenario: scenario, Time: time.Unix(int64(sec), 0).UTC()}
}

// The acceptance-criteria test: 100 concurrent Gets for one key run the
// build function exactly once, and everyone observes the same network.
func TestSingleflightOneBuildPer100ConcurrentGets(t *testing.T) {
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return tinyNet(k.Scenario), nil
	}, Options{})

	const N = 100
	got := make([]*graph.Network, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := c.Get(context.Background(), keyAt("s", 1))
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = n
		}()
	}
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Fatalf("builds = %d, want exactly 1 for %d concurrent gets of one key", b, N)
	}
	for i := 1; i < N; i++ {
		if got[i] != got[0] {
			t.Fatalf("get %d returned a different network pointer", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 {
		t.Errorf("Stats().Builds = %d, want 1", st.Builds)
	}
	if st.Hits+st.Misses != N {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, N)
	}
}

// Distinct (scenario, time, mask) components must not share builds.
func TestDistinctKeysBuildSeparately(t *testing.T) {
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet(k.String()), nil
	}, Options{})
	ctx := context.Background()
	keys := []Key{
		keyAt("a", 1),
		keyAt("a", 2),
		keyAt("b", 1),
		{Scenario: "a", Time: time.Unix(1, 0).UTC(), Mask: "sat:0.10:7"},
	}
	seen := map[*graph.Network]bool{}
	for _, k := range keys {
		n, err := c.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		seen[n] = true
	}
	if builds.Load() != int64(len(keys)) || len(seen) != len(keys) {
		t.Fatalf("builds = %d, distinct networks = %d, want %d each",
			builds.Load(), len(seen), len(keys))
	}
	// Same keys again: all hits, no new builds.
	for _, k := range keys {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != int64(len(keys)) {
		t.Fatalf("repeat gets rebuilt: builds = %d", builds.Load())
	}
}

func TestLRUEvictsColdest(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		return tinyNet(k.String()), nil
	}, Options{Capacity: 2})
	ctx := context.Background()
	k1, k2, k3 := keyAt("s", 1), keyAt("s", 2), keyAt("s", 3)
	for _, k := range []Key{k1, k2} {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is the LRU victim.
	if _, err := c.Get(ctx, k1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, k3); err != nil {
		t.Fatal(err)
	}
	if !c.Peek(k1) || c.Peek(k2) || !c.Peek(k3) {
		t.Errorf("residency after eviction: k1=%v k2=%v k3=%v, want true/false/true",
			c.Peek(k1), c.Peek(k2), c.Peek(k3))
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestTTLExpiresAndRebuilds(t *testing.T) {
	var builds atomic.Int64
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet(k.String()), nil
	}, Options{TTL: time.Minute, Clock: clock})
	ctx := context.Background()
	k := keyAt("s", 1)

	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatalf("fresh entry rebuilt: builds = %d", builds.Load())
	}
	advance(31 * time.Second) // 61s > TTL
	if _, err := c.Get(ctx, k); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("expired entry not rebuilt: builds = %d", builds.Load())
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

func TestBuildErrorsPropagateAndAreNotCached(t *testing.T) {
	boom := errors.New("boom")
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		if builds.Add(1) == 1 {
			return nil, boom
		}
		return tinyNet("ok"), nil
	}, Options{})
	ctx := context.Background()
	if _, err := c.Get(ctx, keyAt("s", 1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	n, err := c.Get(ctx, keyAt("s", 1))
	if err != nil || n == nil {
		t.Fatalf("retry after error: n=%v err=%v", n, err)
	}
	if st := c.Stats(); st.Errors != 1 || st.Builds != 2 {
		t.Errorf("stats = %+v, want Errors=1 Builds=2", st)
	}
}

func TestBuildPanicSurfacesAsError(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		panic("kaboom")
	}, Options{})
	_, err := c.Get(context.Background(), keyAt("s", 1))
	if err == nil {
		t.Fatal("panicking build should return an error")
	}
}

// A waiter whose context dies mid-build bails out with ctx.Err(), while the
// build itself completes and lands in the cache for the next caller.
func TestWaiterCancellationDoesNotAbandonBuild(t *testing.T) {
	gate := make(chan struct{})
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		<-gate
		return tinyNet("slow"), nil
	}, Options{})
	k := keyAt("s", 1)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Get(leaderCtx, k)
		errc <- err
	}()
	// Wait for the build to be in flight, then cancel the leader.
	for i := 0; c.Stats().Builds == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(gate) // let the detached build finish
	n, err := c.Get(context.Background(), k)
	if err != nil || n == nil {
		t.Fatalf("follow-up get: n=%v err=%v", n, err)
	}
	if got := c.Stats().Builds; got != 1 {
		t.Fatalf("builds = %d, want 1 (abandoned build should still populate the cache)", got)
	}
}

func TestPreCancelledContext(t *testing.T) {
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		t.Error("build must not run for a pre-cancelled context")
		return nil, nil
	}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, keyAt("s", 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Purge marks in-flight builds stale: their waiters still get the result,
// but the purged cache is not repopulated with a pre-purge graph.
func TestPurgeInvalidatesInFlightBuilds(t *testing.T) {
	gate := make(chan struct{})
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		<-gate
		return tinyNet("stale"), nil
	}, Options{})
	k := keyAt("s", 1)
	done := make(chan *graph.Network, 1)
	go func() {
		n, _ := c.Get(context.Background(), k)
		done <- n
	}()
	for i := 0; c.Stats().Builds == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	c.Purge()
	close(gate)
	if n := <-done; n == nil {
		t.Fatal("waiter should still receive the stale build's result")
	}
	if c.Peek(k) || c.Len() != 0 {
		t.Fatalf("stale in-flight build entered the purged cache (len=%d)", c.Len())
	}
}

// Hammer the cache from many goroutines over overlapping keys; run with
// -race this doubles as the concurrency audit for the shared structures.
func TestConcurrentMixedKeys(t *testing.T) {
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet(k.String()), nil
	}, Options{Capacity: 4})
	const workers, iters, nkeys = 16, 200, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := keyAt("mix", (w+i)%nkeys)
				n, err := c.Get(context.Background(), k)
				if err != nil || n == nil {
					t.Errorf("get %v: %v", k, err)
					return
				}
				if want := k.String(); n.Name[0] != want {
					t.Errorf("key %v returned network %q", k, n.Name[0])
					return
				}
				if i%50 == 0 && w == 0 {
					c.Purge()
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("Len = %d exceeds capacity 4", c.Len())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Scenario: "starlink/tiny/bp", Time: time.Unix(0, 0).UTC()}
	if got := k.String(); got != "starlink/tiny/bp@1970-01-01T00:00:00Z" {
		t.Errorf("String() = %q", got)
	}
	k.Mask = "sat:0.10:7"
	if got := k.String(); got != "starlink/tiny/bp@1970-01-01T00:00:00Z+sat:0.10:7" {
		t.Errorf("String() = %q", got)
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
	s := Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

// TestPutPrimesWithoutBuilding checks the cache-priming path: Put deposits a
// ready-made network that later Gets serve as plain hits (no build), the
// Primed counter tracks deposits, and Put respects capacity and the
// generation guard like any insert.
func TestPutPrimesWithoutBuilding(t *testing.T) {
	var builds atomic.Int64
	c := New(func(ctx context.Context, k Key) (*graph.Network, error) {
		builds.Add(1)
		return tinyNet("built-" + k.Scenario), nil
	}, Options{Capacity: 2})

	primed := tinyNet("primed")
	c.Put(keyAt("p", 1), primed)
	if st := c.Stats(); st.Primed != 1 {
		t.Fatalf("Primed = %d after one Put", st.Primed)
	}
	n, err := c.Get(context.Background(), keyAt("p", 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != primed {
		t.Fatal("Get returned a different network than the primed one")
	}
	if b := builds.Load(); b != 0 {
		t.Fatalf("Get after Put ran %d builds, want 0", b)
	}

	// nil networks are ignored, not cached as poison.
	c.Put(keyAt("p", 2), nil)
	if _, _, ok := c.GetCached(keyAt("p", 2)); ok {
		t.Fatal("nil Put created an entry")
	}

	// Put participates in the LRU: two more deposits evict the oldest.
	c.Put(keyAt("p", 3), tinyNet("x"))
	c.Put(keyAt("p", 4), tinyNet("y"))
	if _, _, ok := c.GetCached(keyAt("p", 1)); ok {
		t.Fatal("capacity-2 cache still holds the first primed entry after two more Puts")
	}
}
