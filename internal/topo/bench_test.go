package topo

import (
	"testing"

	"leosim/internal/constellation"
	"leosim/internal/geo"
)

// BenchmarkMotifBuild measures the cost of computing each motif's link set
// on the Starlink phase-1 shell — the per-epoch rebuild cost the topo sweep
// pays for epoch-aware motifs.
func BenchmarkMotifBuild(b *testing.B) {
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range IDs() {
		id := id
		b.Run(id.String(), func(b *testing.B) {
			m := MustBuild(id, Config{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				links := LinksAt(m, c, geo.Epoch)
				if len(links) == 0 {
					b.Fatal("no links")
				}
			}
		})
	}
}
