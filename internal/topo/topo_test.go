package topo

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
)

// sortedHash fingerprints an ISL set independent of generation order: links
// are sorted by (A, B) and FNV-1a-hashed as 8 little-endian bytes of A then
// B each.
func sortedHash(isls []constellation.ISL) (int, uint64) {
	s := make([]constellation.ISL, len(isls))
	copy(s, isls)
	sort.Slice(s, func(i, j int) bool {
		if s[i].A != s[j].A {
			return s[i].A < s[j].A
		}
		return s[i].B < s[j].B
	})
	h := fnv.New64a()
	var buf [8]byte
	for _, l := range s {
		binary.LittleEndian.PutUint64(buf[:], uint64(l.A))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(l.B))
		h.Write(buf[:])
	}
	return len(s), h.Sum64()
}

// The plus-grid motif must reproduce the exact pre-refactor ISL set: these
// counts and hashes were computed from the hardwired plusGrid generator
// before it was exported behind the Motif interface. Any drift here means
// the refactor changed published results.
func TestPlusGridByteIdenticalToPreRefactor(t *testing.T) {
	for _, tc := range []struct {
		shell constellation.Shell
		count int
		hash  uint64
	}{
		{constellation.StarlinkPhase1(), 3168, 0xeeb0f639e728a6bd},
		{constellation.KuiperPhase1(), 2312, 0x9e52d69934666171},
	} {
		c, err := constellation.New([]constellation.Shell{tc.shell}, Option(MustBuild(PlusGrid, Config{})))
		if err != nil {
			t.Fatal(err)
		}
		n, h := sortedHash(c.ISLs)
		if n != tc.count || h != tc.hash {
			t.Errorf("%s: plus-grid motif gives %d links hash %#x, pre-refactor set was %d links hash %#x",
				tc.shell.Name, n, h, tc.count, tc.hash)
		}
		// The motif must also match the default generator path (WithISLs),
		// byte for byte including generation order.
		def, err := constellation.New([]constellation.Shell{tc.shell}, constellation.WithISLs())
		if err != nil {
			t.Fatal(err)
		}
		if len(def.ISLs) != len(c.ISLs) {
			t.Fatalf("%s: motif %d links, default generator %d", tc.shell.Name, len(c.ISLs), len(def.ISLs))
		}
		for i := range def.ISLs {
			if def.ISLs[i] != c.ISLs[i] {
				t.Fatalf("%s: link %d differs: motif %v, default %v", tc.shell.Name, i, c.ISLs[i], def.ISLs[i])
			}
		}
	}
}

// testConst builds a two-shell constellation (delta + star) — the hardest
// case for intra-shell and seam invariants.
func testConst(t *testing.T, opts ...constellation.Option) *constellation.Constellation {
	t.Helper()
	c, err := constellation.New(
		[]constellation.Shell{constellation.TestShell(), constellation.PolarShell()}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// maxDegree is the per-motif ISL-per-satellite bound the invariant test
// holds each implementation to.
func maxDegree(id ID) int {
	switch id {
	case Ladder:
		return 2
	case Demand:
		return 2 + demandInterCap
	default: // plus-grid, diag-grid, nearest: ring + one link per plane side
		return 4
	}
}

func TestMotifInvariants(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			m, err := Build(id, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != id.String() {
				t.Errorf("Name() = %q, want %q", m.Name(), id.String())
			}
			c := testConst(t, Option(m))
			if len(c.ISLs) == 0 {
				t.Fatal("motif produced no links")
			}
			deg := make(map[int]int)
			seen := make(map[constellation.ISL]bool, len(c.ISLs))
			for _, l := range c.ISLs {
				if l.A >= l.B {
					t.Fatalf("link %v not canonical (want A < B)", l)
				}
				if l.A < 0 || l.B >= c.Size() {
					t.Fatalf("link %v out of range", l)
				}
				if seen[l] {
					t.Fatalf("duplicate link %v", l)
				}
				seen[l] = true
				if c.Sats[l.A].ShellIndex != c.Sats[l.B].ShellIndex {
					t.Fatalf("cross-shell link %v (shells %d and %d)",
						l, c.Sats[l.A].ShellIndex, c.Sats[l.B].ShellIndex)
				}
				deg[l.A]++
				deg[l.B]++
			}
			limit := maxDegree(id)
			for sat, d := range deg {
				if d > limit {
					t.Fatalf("satellite %d has degree %d, motif bound is %d", sat, d, limit)
				}
			}
		})
	}
}

// Star shells must never get seam wrap links from any motif.
func TestMotifStarSeamOpen(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			c := testConst(t, Option(MustBuild(id, Config{})))
			star := 1 // PolarShell is shell index 1
			sh := c.Shells[star]
			for _, l := range c.ISLs {
				if c.Sats[l.A].ShellIndex != star {
					continue
				}
				pa, pb := c.Sats[l.A].Plane, c.Sats[l.B].Plane
				if (pa == 0 && pb == sh.Planes-1) || (pa == sh.Planes-1 && pb == 0) {
					t.Fatalf("link %v wraps the star shell seam (planes %d–%d)", l, pa, pb)
				}
			}
		})
	}
}

// Every motif must be deterministic: two independent builds (and, for
// epoch-aware motifs, two evaluations at the same instant) give identical
// link slices.
func TestMotifDeterminism(t *testing.T) {
	at := geo.Epoch.Add(37 * time.Minute)
	for _, id := range IDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			c := testConst(t, constellation.WithISLs())
			m1, m2 := MustBuild(id, Config{}), MustBuild(id, Config{})
			a, b := LinksAt(m1, c, at), LinksAt(m2, c, at)
			if len(a) != len(b) {
				t.Fatalf("builds differ in size: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("link %d differs across identical builds: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

// Epoch-aware motifs must actually react to geometry: the nearest matching
// at two instants half an orbit apart should not be the same set, and both
// sets must hold the package invariants.
func TestEpochAwareMotifsEvolve(t *testing.T) {
	c := testConst(t, constellation.WithISLs())
	for _, id := range []ID{Nearest, Demand} {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			m, ok := MustBuild(id, Config{}).(EpochAware)
			if !ok {
				t.Fatalf("%s is not EpochAware", id)
			}
			a := m.LinksAt(c, geo.Epoch)
			b := m.LinksAt(c, geo.Epoch.Add(45*time.Minute))
			_, ha := sortedHash(a)
			_, hb := sortedHash(b)
			if ha == hb {
				t.Errorf("%s: identical link sets half an orbit apart — epoch awareness is not wired", id)
			}
		})
	}
}

// Ladder is exactly the intra-plane rings: 2 links per satellite, no
// cross-plane links at all.
func TestLadderRingOnly(t *testing.T) {
	c := testConst(t, Option(MustBuild(Ladder, Config{})))
	for _, l := range c.ISLs {
		if c.Sats[l.A].Plane != c.Sats[l.B].Plane {
			t.Fatalf("ladder link %v crosses planes", l)
		}
	}
	want := 0
	for _, sh := range c.Shells {
		want += sh.Planes * sh.SatsPerPlane
	}
	if len(c.ISLs) != want {
		t.Fatalf("ladder has %d links, want %d (one ring link per satellite)", len(c.ISLs), want)
	}
}

// Diag-grid holds +Grid link count (equal hardware cost) but shifts every
// cross-plane link by the slot offset.
func TestDiagGridParityAndShift(t *testing.T) {
	sh := constellation.TestShell()
	plus, err := constellation.New([]constellation.Shell{sh}, constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	diag, err := constellation.New([]constellation.Shell{sh}, Option(MustBuild(DiagGrid, Config{})))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.ISLs) != len(plus.ISLs) {
		t.Fatalf("diag-grid has %d links, +Grid has %d — hardware parity broken", len(diag.ISLs), len(plus.ISLs))
	}
	for _, l := range diag.ISLs {
		sa, sb := diag.Sats[l.A], diag.Sats[l.B]
		if sa.Plane == sb.Plane {
			continue
		}
		// Interior cross-plane links must land offset slots over.
		if (sa.Plane+1)%sh.Planes == sb.Plane && sb.Plane != 0 {
			if want := (sa.Slot + 1) % sh.SatsPerPlane; sb.Slot != want {
				t.Fatalf("diag link %v: plane %d slot %d → plane %d slot %d, want slot %d",
					l, sa.Plane, sa.Slot, sb.Plane, sb.Slot, want)
			}
		}
	}
}

// Demand placement spends exactly the parity budget (+Grid total link count)
// on a delta shell where the cap cannot bind globally.
func TestDemandBudgetParity(t *testing.T) {
	sh := constellation.TestShell()
	plus, err := constellation.New([]constellation.Shell{sh}, constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	dem, err := constellation.New([]constellation.Shell{sh}, Option(MustBuild(Demand, Config{})))
	if err != nil {
		t.Fatal(err)
	}
	if len(dem.ISLs) > len(plus.ISLs) {
		t.Fatalf("demand motif placed %d links, +Grid parity budget is %d", len(dem.ISLs), len(plus.ISLs))
	}
	// The greedy must spend nearly all of the budget — the inter-plane cap
	// can strand a few units, but a large shortfall means the candidate set
	// is too narrow.
	if len(dem.ISLs) < len(plus.ISLs)*9/10 {
		t.Fatalf("demand motif placed only %d links of the %d budget", len(dem.ISLs), len(plus.ISLs))
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	for _, id := range IDs() {
		b, err := id.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ID
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Errorf("round trip %s → %q → %s", id, b, back)
		}
	}
	if _, err := ParseID("mesh"); err == nil {
		t.Error("ParseID accepted unknown motif name")
	}
	var id ID
	if err := id.UnmarshalText([]byte("grid")); err == nil {
		t.Error("UnmarshalText accepted unknown motif name")
	}
	if _, err := (ID(99)).MarshalText(); err == nil {
		t.Error("MarshalText accepted out-of-range id")
	}
}
