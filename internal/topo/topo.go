// Package topo is the ISL topology design lab: pluggable link-placement
// strategies ("motifs") for the constellation, decoupled from the rest of the
// simulator through constellation.WithISLTopology. The paper fixes its Hybrid
// design to the +Grid motif; this package multiplies the scenario space with
// the inter-plane connectivity patterns of arXiv:2005.07965 (diagonal grids,
// nearest-neighbour matchings) and the demand-aware placement of Starfield
// (arXiv:2601.10083), which concentrates a fixed ISL budget where the Zipf
// city demand actually flows.
package topo

import (
	"fmt"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

// Motif is a link-placement strategy: given a fully propagated constellation
// it returns the ISL set. Implementations must return links that are
// OrderISL-canonical (A < B), duplicate-free and intra-shell — the invariants
// the rest of the simulator (graph building, the checker) assumes and the
// motif test suite enforces for every registered motif.
type Motif interface {
	Name() string
	Links(c *constellation.Constellation) []constellation.ISL
}

// EpochAware marks motifs whose link set depends on the instantaneous
// geometry (nearest-neighbour matchings, demand-aware placement). LinksAt
// returns the set for time t; plain Links freezes the motif at the
// constellation epoch (geo.Epoch). The topo sweep recomputes epoch-aware
// motifs per snapshot; standard experiments run them frozen.
type EpochAware interface {
	Motif
	LinksAt(c *constellation.Constellation, t time.Time) []constellation.ISL
}

// ID enumerates the built-in motifs.
type ID uint8

const (
	// PlusGrid is the paper's §2 baseline: intra-plane ring + same-slot
	// cross-plane links, 4 ISLs/sat.
	PlusGrid ID = iota
	// DiagGrid shifts every cross-plane link by a fixed slot offset,
	// trading the +Grid's zigzag for diagonal progress (arXiv:2005.07965).
	DiagGrid
	// Ladder keeps only the intra-plane rings — 2 ISLs/sat, modelling
	// cheaper buses with a single pair of along-track terminals.
	Ladder
	// Nearest greedily matches each plane pair by instantaneous distance,
	// recomputed per snapshot epoch (arXiv:2005.07965).
	Nearest
	// Demand places a fixed cross-plane ISL budget along the gravity
	// demand implied by the Zipf city populations (arXiv:2601.10083).
	Demand
)

// IDs lists every built-in motif in display order.
func IDs() []ID { return []ID{PlusGrid, DiagGrid, Ladder, Nearest, Demand} }

// idNames is the single source of truth for motif naming; String,
// MarshalText and UnmarshalText all read it, so JSON envelopes and CLI flags
// agree byte-for-byte.
var idNames = [...]string{
	PlusGrid: "plus-grid",
	DiagGrid: "diag-grid",
	Ladder:   "ladder",
	Nearest:  "nearest",
	Demand:   "demand",
}

// String implements fmt.Stringer.
func (id ID) String() string {
	if int(id) < len(idNames) {
		return idNames[id]
	}
	return fmt.Sprintf("motif(%d)", uint8(id))
}

// MarshalText renders the motif name so ID-keyed maps and structs serialize
// to JSON as "plus-grid" rather than raw ints (mirroring core.Mode).
func (id ID) MarshalText() ([]byte, error) {
	if int(id) >= len(idNames) {
		return nil, fmt.Errorf("topo: unknown motif id %d", uint8(id))
	}
	return []byte(idNames[id]), nil
}

// UnmarshalText accepts the names produced by MarshalText.
func (id *ID) UnmarshalText(b []byte) error {
	p, err := ParseID(string(b))
	if err != nil {
		return err
	}
	*id = p
	return nil
}

// ParseID resolves a motif name as used on CLI flags and in JSON envelopes.
func ParseID(s string) (ID, error) {
	for i, n := range idNames {
		if n == s {
			return ID(i), nil
		}
	}
	return 0, fmt.Errorf("topo: unknown motif %q (want one of %v)", s, idNames[:])
}

// Config carries the knobs motifs can take; zero values select documented
// defaults, so Build(id, Config{}) works for every motif.
type Config struct {
	// SlotOffset is the diag-grid cross-plane slot shift (default 1).
	SlotOffset int
	// OmitSeam drops the Walker-delta plane-ring wrap links, the
	// WithoutSeamISLs ablation (grid-family motifs only).
	OmitSeam bool
	// Cities is the demand model for the demand motif: gravity corridors
	// are drawn between the most populous entries. Nil loads a default
	// deterministic set (ground.Cities(100)); the topo sweep passes the
	// sim's own city set so placement and evaluation share one demand
	// model.
	Cities []ground.City
	// Budget caps the demand motif's cross-plane link count. Zero means
	// +Grid parity — one cross-plane link per satellite — so demand-aware
	// placement is compared at equal hardware cost.
	Budget int
}

// Build constructs motif id with configuration cfg.
func Build(id ID, cfg Config) (Motif, error) {
	switch id {
	case PlusGrid:
		return &plusGridMotif{omitSeam: cfg.OmitSeam}, nil
	case DiagGrid:
		off := cfg.SlotOffset
		if off == 0 {
			off = 1
		}
		return &diagGridMotif{offset: off, omitSeam: cfg.OmitSeam}, nil
	case Ladder:
		return ladderMotif{}, nil
	case Nearest:
		return nearestMotif{}, nil
	case Demand:
		cities := cfg.Cities
		if cities == nil {
			var err error
			cities, err = ground.Cities(defaultDemandCities)
			if err != nil {
				return nil, err
			}
		}
		return newDemandMotif(cities, cfg.Budget), nil
	default:
		return nil, fmt.Errorf("topo: unknown motif id %d", uint8(id))
	}
}

// MustBuild is Build for motifs whose construction cannot fail given a valid
// id; it panics otherwise (tests, examples).
func MustBuild(id ID, cfg Config) Motif {
	m, err := Build(id, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// LinksAt resolves the link set of m at time t: epoch-aware motifs recompute,
// static ones return their fixed set.
func LinksAt(m Motif, c *constellation.Constellation, t time.Time) []constellation.ISL {
	if ea, ok := m.(EpochAware); ok {
		return ea.LinksAt(c, t)
	}
	return m.Links(c)
}

// Option adapts a motif to a constellation construction option.
func Option(m Motif) constellation.Option {
	return constellation.WithISLTopology(m.Links)
}

// planeRing appends each shell's intra-plane rings — the backbone every
// motif shares: successive slots of one orbit are the cheapest, most stable
// links a satellite can hold.
func planeRing(c *constellation.Constellation, isls []constellation.ISL) []constellation.ISL {
	for si, sh := range c.Shells {
		if sh.SatsPerPlane <= 1 {
			continue
		}
		for plane := 0; plane < sh.Planes; plane++ {
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				a := c.SatIndex(si, plane, slot)
				b := c.SatIndex(si, plane, (slot+1)%sh.SatsPerPlane)
				if a != b {
					isls = append(isls, constellation.OrderISL(a, b))
				}
			}
		}
	}
	return isls
}

// wrapsSeam reports whether shell sh closes its plane ring: Walker deltas
// (RAANSpreadDeg == 360) do, Walker stars never do — their first and last
// planes counter-rotate across the physical seam (see
// constellation.PlusGridISLs).
func wrapsSeam(sh constellation.Shell) bool { return sh.RAANSpreadDeg >= 360 }

// epochOf returns the reference instant for frozen epoch-aware motifs.
func epochOf() time.Time { return geo.Epoch }
