package topo

import (
	"sort"
	"time"

	"leosim/internal/constellation"
)

// plusGridMotif is the paper's +Grid behind the Motif interface. It delegates
// to constellation.PlusGridISLs, whose output (content and order) is pinned
// byte-identical to the pre-refactor generator by the regression tests in
// this package.
type plusGridMotif struct{ omitSeam bool }

func (m *plusGridMotif) Name() string { return PlusGrid.String() }

func (m *plusGridMotif) Links(c *constellation.Constellation) []constellation.ISL {
	return constellation.PlusGridISLs(c, m.omitSeam)
}

// diagGridMotif is the +Grid with every cross-plane link shifted by a fixed
// slot offset: satellite (plane p, slot j) links to (p+1, j+offset). With the
// +Grid, an inter-plane hop makes no along-track progress; the diagonal
// variant folds one slot of along-track advance into every plane change,
// shortening zigzag routes on diagonal corridors (arXiv:2005.07965). Degree
// and link count match the +Grid exactly, so comparisons are at equal
// hardware cost. Seam handling is the +Grid's: delta shells wrap with the
// extra WalkerF phasing shift, star shells never wrap.
type diagGridMotif struct {
	offset   int
	omitSeam bool
}

func (m *diagGridMotif) Name() string { return DiagGrid.String() }

func (m *diagGridMotif) Links(c *constellation.Constellation) []constellation.ISL {
	var isls []constellation.ISL
	for si, sh := range c.Shells {
		for plane := 0; plane < sh.Planes; plane++ {
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				a := c.SatIndex(si, plane, slot)
				if sh.SatsPerPlane > 1 {
					b := c.SatIndex(si, plane, (slot+1)%sh.SatsPerPlane)
					if a != b {
						isls = append(isls, constellation.OrderISL(a, b))
					}
				}
				if sh.Planes > 1 {
					next := plane + 1
					shift := m.offset
					if next == sh.Planes {
						if m.omitSeam || !wrapsSeam(sh) {
							continue
						}
						next = 0
						shift += sh.WalkerF
					}
					tgt := ((slot+shift)%sh.SatsPerPlane + sh.SatsPerPlane) % sh.SatsPerPlane
					b := c.SatIndex(si, next, tgt)
					if a != b {
						isls = append(isls, constellation.OrderISL(a, b))
					}
				}
			}
		}
	}
	return constellation.DedupISLs(isls)
}

// ladderMotif keeps only the intra-plane rings: 2 ISLs per satellite, the
// cheapest bus that still gets any use out of lasers. Along-track neighbours
// are the most stable links a satellite can hold (constant range, no
// pointing slew), so a ring-only bus needs the least terminal hardware;
// cross-plane traffic must bounce through the ground segment.
type ladderMotif struct{}

func (ladderMotif) Name() string { return Ladder.String() }

func (ladderMotif) Links(c *constellation.Constellation) []constellation.ISL {
	return constellation.DedupISLs(planeRing(c, nil))
}

// nearestMotif augments the intra-plane rings with a greedy minimum-distance
// inter-plane matching, recomputed per snapshot epoch: every cross-plane pair
// of one shell is a candidate, candidates are taken in instantaneous-range
// order, and a satellite accepts at most two — the +Grid's degree-4 bus, but
// pointed at whatever happens to be closest. Unlike an adjacent-plane
// matching (which the Walker symmetry pins to the same slots forever, i.e.
// the +Grid itself), the free plane choice follows the orbit-crossing
// geometry: near the turning latitudes the nearest neighbour sits several
// planes over, and the matching evolves as the shell sweeps
// (arXiv:2005.07965).
type nearestMotif struct{}

// nearestInterCap is the inter-plane terminal count per satellite (plus the
// two ring terminals: degree ≤ 4, the +Grid bus).
const nearestInterCap = 2

func (nearestMotif) Name() string { return Nearest.String() }

func (m nearestMotif) Links(c *constellation.Constellation) []constellation.ISL {
	return m.LinksAt(c, epochOf())
}

func (nearestMotif) LinksAt(c *constellation.Constellation, t time.Time) []constellation.ISL {
	pos := c.PositionsECEF(t)
	isls := planeRing(c, nil)
	type cand struct {
		d2   float64
		a, b int
	}
	var cands []cand
	for si, sh := range c.Shells {
		if sh.Planes < 2 {
			continue
		}
		lo := c.SatIndex(si, 0, 0)
		hi := lo + sh.Planes*sh.SatsPerPlane
		// Candidates further than twice the same-slot adjacent-plane
		// spacing can never win a terminal — pruning them keeps the sort
		// linear in practice.
		ref := pos[c.SatIndex(si, 0, 0)].Sub(pos[c.SatIndex(si, 1, 0)]).Norm2()
		cut := 4 * ref
		for a := lo; a < hi; a++ {
			pa := c.Sats[a].Plane
			for b := a + 1; b < hi; b++ {
				pb := c.Sats[b].Plane
				if pb == pa {
					continue
				}
				// Star shells have a physical seam: the first and last
				// planes counter-rotate, so a laser could not track across
				// (see constellation.PlusGridISLs).
				if !wrapsSeam(sh) && ((pa == 0 && pb == sh.Planes-1) || (pb == 0 && pa == sh.Planes-1)) {
					continue
				}
				d2 := pos[a].Sub(pos[b]).Norm2()
				if d2 > cut {
					continue
				}
				cands = append(cands, cand{d2: d2, a: a, b: b})
			}
		}
	}
	// Range ties (symmetric geometries) break on satellite indices so the
	// matching is deterministic.
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].d2 != cands[y].d2 {
			return cands[x].d2 < cands[y].d2
		}
		if cands[x].a != cands[y].a {
			return cands[x].a < cands[y].a
		}
		return cands[x].b < cands[y].b
	})
	deg := make(map[int]int)
	for _, cd := range cands {
		if deg[cd.a] >= nearestInterCap || deg[cd.b] >= nearestInterCap {
			continue
		}
		deg[cd.a]++
		deg[cd.b]++
		isls = append(isls, constellation.OrderISL(cd.a, cd.b))
	}
	return constellation.DedupISLs(isls)
}
