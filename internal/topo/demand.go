package topo

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

// Demand motif tuning. The corridor model is deliberately coarse — it only
// has to rank candidate links, not predict traffic — and every knob is fixed
// so placement is deterministic.
const (
	// defaultDemandCities sizes the fallback city set when the caller
	// supplies none.
	defaultDemandCities = 100
	// demandTopCities bounds how many of the most populous cities seed
	// gravity corridors.
	demandTopCities = 40
	// demandTopPairs bounds how many corridors (by gravity weight) are
	// kept.
	demandTopPairs = 150
	// demandMinPairKm matches the experiments' terrestrial cutoff: closer
	// pairs never ride the constellation.
	demandMinPairKm = 2000
	// demandSampleKm is the spacing of corridor sample points along the
	// great circle.
	demandSampleKm = 900
	// demandSigmaKm is the Gaussian radius of a sample's attraction: a
	// candidate link scores by how closely its midpoint tracks corridor
	// samples.
	demandSigmaKm = 1200
	// demandMaxOffset bounds the cross-plane slot offsets considered
	// (±demandMaxOffset around same-slot alignment).
	demandMaxOffset = 3
	// demandMaxSkip bounds how many planes a single candidate link may
	// jump. Slot spacing is ~3× plane spacing on the Starlink shell, so a
	// multi-plane skip combined with a small slot offset is what makes a
	// physically ~45° diagonal — the express geometry a same-plane-step
	// candidate set can never produce. The atmosphere-floor prune, not this
	// bound, is what actually limits reach; this only caps the candidate
	// enumeration.
	demandMaxSkip = 8
	// demandInterCap caps inter-plane terminals per satellite. Two ring
	// terminals plus this many steerable ones stays within one extra
	// terminal pair of the +Grid bus while letting hot regions densify.
	demandInterCap = 4
	// demandSwapFrac is the fraction of the cross-plane budget traded from
	// the +Grid lattice to express links: the coldest lattice links are
	// dropped and exactly that many corridor diagonals placed instead. The
	// rest of the lattice stays, so off-corridor pairs keep near-+Grid
	// routing.
	demandSwapFrac = 0.4
	// demandMinAltKm is the atmosphere floor an express link must clear at
	// every instant, not just placement time: candidates are pruned by the
	// worst-case chord of their plane/slot relation, so a link that passes
	// here can never dip below the floor as the constellation rotates.
	// Matches the §2 ~80 km floor `leosim check` enforces, plus margin.
	demandMinAltKm = 85
)

// demandSample is one corridor point: a unit-sphere position, the unit
// tangent of the great circle at that point (the direction traffic flows
// through it), and the gravity weight of its corridor.
type demandSample struct {
	u geo.Vec3
	t geo.Vec3
	w float64
}

// demandMotif spends a fixed cross-plane ISL budget along gravity demand:
// corridors between the most populous city pairs are sampled along their
// great circles, then the +Grid lattice's coldest links (least demand
// flowing nearby) are traded for corridor-aligned express diagonals chosen
// by a submodular greedy (arXiv:2601.10083). Intra-plane rings are always
// kept — they are the stable backbone — so at +Grid-parity budget the total
// link count matches the +Grid exactly while a demandSwapFrac slice of the
// lattice crowds over demand. The motif is epoch-aware: satellites sweep
// over the corridors, so the swap is recomputed per snapshot.
type demandMotif struct {
	samples []demandSample
	budget  int
}

func newDemandMotif(cities []ground.City, budget int) *demandMotif {
	return &demandMotif{samples: demandCorridors(cities), budget: budget}
}

// demandCorridors builds the corridor sample set from a city list (assumed
// sorted by descending population, as ground.Cities returns).
func demandCorridors(cities []ground.City) []demandSample {
	top := cities
	if len(top) > demandTopCities {
		top = top[:demandTopCities]
	}
	type corridor struct {
		i, j int
		w    float64
	}
	var cors []corridor
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			a, b := geo.LL(top[i].Lat, top[i].Lon), geo.LL(top[j].Lat, top[j].Lon)
			if geo.GreatCircleKm(a, b) < demandMinPairKm {
				continue
			}
			cors = append(cors, corridor{i: i, j: j, w: top[i].Pop * top[j].Pop})
		}
	}
	sort.Slice(cors, func(x, y int) bool {
		if cors[x].w != cors[y].w {
			return cors[x].w > cors[y].w
		}
		if cors[x].i != cors[y].i {
			return cors[x].i < cors[y].i
		}
		return cors[x].j < cors[y].j
	})
	if len(cors) > demandTopPairs {
		cors = cors[:demandTopPairs]
	}
	var samples []demandSample
	for _, co := range cors {
		a := geo.LL(top[co.i].Lat, top[co.i].Lon).ToECEF().Unit()
		b := geo.LL(top[co.j].Lat, top[co.j].Lon).ToECEF().Unit()
		// Slerp sample points every ~demandSampleKm along the great circle.
		ang := a.AngleTo(b)
		arcKm := ang * geo.EarthRadius
		n := int(arcKm/demandSampleKm) + 1
		sin := math.Sin(ang)
		for k := 0; k <= n; k++ {
			f := float64(k) / float64(n)
			var u geo.Vec3
			if sin < 1e-9 {
				u = a
			} else {
				u = a.Scale(math.Sin((1-f)*ang) / sin).Add(b.Scale(math.Sin(f*ang) / sin))
			}
			u = u.Unit()
			// Corridor tangent at u: the component of the far endpoint
			// orthogonal to u, i.e. the great-circle direction toward b.
			tan := b.Sub(u.Scale(u.Dot(b)))
			if tan.Norm2() < 1e-18 {
				continue // sample sits at (or antipodal to) b; no direction
			}
			samples = append(samples, demandSample{u: u, t: tan.Unit(), w: co.w})
		}
	}
	return samples
}

func (m *demandMotif) Name() string { return Demand.String() }

func (m *demandMotif) Links(c *constellation.Constellation) []constellation.ISL {
	return m.LinksAt(c, epochOf())
}

func (m *demandMotif) LinksAt(c *constellation.Constellation, t time.Time) []constellation.ISL {
	pos := c.PositionsECEF(t)
	isls := planeRing(c, nil)

	// Squared chord cutoff at 3σ on the unit sphere: beyond it the Gaussian
	// contribution is < e⁻⁹ and skipped.
	cut2 := (3.0 * demandSigmaKm / geo.EarthRadius) * (3.0 * demandSigmaKm / geo.EarthRadius)
	invSig2 := (geo.EarthRadius / demandSigmaKm) * (geo.EarthRadius / demandSigmaKm)
	// coverageOf is the express-link objective: corridor proximity gated by
	// direction alignment (see demandCoverage).
	coverageOf := func(a, b int) (cov []demandCoverage, score float64) {
		mid := pos[a].Add(pos[b]).Unit()
		dir := pos[b].Sub(pos[a]).Unit()
		for sj, s := range m.samples {
			d2 := mid.Sub(s.u).Norm2()
			if d2 > cut2 {
				continue
			}
			align := dir.Dot(s.t)
			g := align * align * math.Exp(-d2*invSig2)
			if g < 1e-6 {
				continue
			}
			cov = append(cov, demandCoverage{sample: sj, g: g})
			score += s.w * g
		}
		return cov, score
	}
	// proximityOf ranks baseline links for removal: direction is ignored
	// because a grid link near a corridor carries its crossing traffic no
	// matter which way it points.
	proximityOf := func(a, b int) (score float64) {
		mid := pos[a].Add(pos[b]).Unit()
		for _, s := range m.samples {
			d2 := mid.Sub(s.u).Norm2()
			if d2 > cut2 {
				continue
			}
			score += s.w * math.Exp(-d2*invSig2)
		}
		return score
	}

	// Baseline: the +Grid cross-plane lattice, each link scored by how much
	// demand flows near it.
	type baseLink struct {
		score float64
		a, b  int
	}
	var baseline []baseLink
	for si, sh := range c.Shells {
		if sh.Planes < 2 {
			continue
		}
		lastPlane := sh.Planes
		if !wrapsSeam(sh) {
			lastPlane--
		}
		for plane := 0; plane < lastPlane; plane++ {
			next := plane + 1
			phase := 0
			if next == sh.Planes {
				next = 0
				phase = sh.WalkerF // seam wrap absorbs the Walker phasing
			}
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				a := c.SatIndex(si, plane, slot)
				b := c.SatIndex(si, next, (slot+phase)%sh.SatsPerPlane)
				if a == b {
					continue
				}
				l := constellation.OrderISL(a, b)
				baseline = append(baseline, baseLink{score: proximityOf(l.A, l.B), a: l.A, b: l.B})
			}
		}
	}

	budget := m.budget
	if budget <= 0 {
		budget = len(baseline) // +Grid parity
	}
	// Swap: keep the (1−frac) baseline links demand leans on hardest, free
	// the coldest ones, and respend exactly that many on express diagonals.
	swap := int(demandSwapFrac * float64(budget))
	keep := budget - swap
	sort.Slice(baseline, func(x, y int) bool {
		if baseline[x].score != baseline[y].score {
			return baseline[x].score > baseline[y].score
		}
		if baseline[x].a != baseline[y].a {
			return baseline[x].a < baseline[y].a
		}
		return baseline[x].b < baseline[y].b
	})
	if keep > len(baseline) {
		keep = len(baseline)
		swap = budget - keep
	}

	res := make([]float64, len(m.samples))
	for i, s := range m.samples {
		res[i] = s.w
	}
	seen := map[constellation.ISL]bool{}
	interDeg := make(map[int]int)
	for _, bl := range baseline[:keep] {
		isls = append(isls, constellation.ISL{A: bl.a, B: bl.b})
		seen[constellation.ISL{A: bl.a, B: bl.b}] = true
		interDeg[bl.a]++
		interDeg[bl.b]++
		// Kept links already serve their corridors; decay the residuals so
		// express links go where the lattice doesn't.
		cov, _ := coverageOf(bl.a, bl.b)
		for _, cv := range cov {
			res[cv.sample] *= 1 - cv.g
		}
	}

	// Express candidates: multi-plane skips with slot offsets — the only
	// geometry that yields physically diagonal links on an anisotropic
	// Walker grid.
	var cands []*demandCand
	for si, sh := range c.Shells {
		if sh.Planes < 2 {
			continue
		}
		lastPlane := sh.Planes
		if !wrapsSeam(sh) {
			lastPlane--
		}
		maxSkip := demandMaxSkip
		if maxSkip > sh.Planes-1 {
			maxSkip = sh.Planes - 1
		}
		// Altitude prune per (Δplane, Δslot) relation: worst-case chord over
		// all time must clear the atmosphere floor. Cached because every
		// (plane, slot) start shares the handful of relations.
		type relKey struct{ dPlane, dSlot int }
		clears := map[relKey]bool{}
		relClears := func(a, b int) bool {
			sa, sb := c.Sats[a], c.Sats[b]
			k := relKey{sb.Plane - sa.Plane, sb.Slot - sa.Slot}
			ok, cached := clears[k]
			if !cached {
				ok = chordClearsFloor(sh, maxChordKm(sh, k.dPlane, k.dSlot))
				clears[k] = ok
			}
			return ok
		}
		for plane := 0; plane < lastPlane; plane++ {
			for skip := 1; skip <= maxSkip; skip++ {
				next := plane + skip
				phase := 0
				if next >= sh.Planes {
					if !wrapsSeam(sh) {
						break // the jump would cross the physical seam
					}
					next -= sh.Planes
					phase = sh.WalkerF // seam wrap absorbs the Walker phasing
				}
				for slot := 0; slot < sh.SatsPerPlane; slot++ {
					a := c.SatIndex(si, plane, slot)
					for off := -demandMaxOffset; off <= demandMaxOffset; off++ {
						tgt := ((slot+phase+off)%sh.SatsPerPlane + sh.SatsPerPlane) % sh.SatsPerPlane
						b := c.SatIndex(si, next, tgt)
						if a == b {
							continue
						}
						l := constellation.OrderISL(a, b)
						if seen[l] {
							continue
						}
						seen[l] = true
						if !relClears(l.A, l.B) {
							continue // would graze the atmosphere at some point
						}
						cd := &demandCand{a: l.A, b: l.B}
						cd.cov, cd.score = coverageOf(l.A, l.B)
						if cd.score <= 0 {
							continue // never spend budget off-corridor
						}
						cands = append(cands, cd)
					}
				}
			}
		}
	}

	// Lazy submodular greedy: each sample carries a residual weight that a
	// taken link multiplies down by (1−g), so the next-best link covers
	// corridor stretches the budget hasn't reached yet instead of stacking
	// parallel links on the same hot spot. Marginal scores only ever
	// shrink, so a candidate whose stale score still beats the runner-up
	// after refreshing is exactly the greedy argmax.
	rescore := func(cd *demandCand) {
		cd.score = 0
		for _, cv := range cd.cov {
			cd.score += res[cv.sample] * cv.g
		}
	}
	better := func(x, y *demandCand) bool {
		if x.score != y.score {
			return x.score > y.score
		}
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	}
	h := &candHeap{cands: cands, less: better}
	heap.Init(h)
	taken := 0
	for taken < swap && h.Len() > 0 {
		cd := h.cands[0]
		if interDeg[cd.a] >= demandInterCap || interDeg[cd.b] >= demandInterCap {
			heap.Pop(h)
			continue
		}
		stale := cd.score
		rescore(cd)
		if h.Len() > 1 && cd.score < stale {
			// Score shrank; re-seat and let the next pop decide.
			heap.Fix(h, 0)
			if h.cands[0] != cd {
				continue
			}
		}
		heap.Pop(h)
		if cd.score <= 0 {
			break // residual demand exhausted; don't place junk
		}
		interDeg[cd.a]++
		interDeg[cd.b]++
		isls = append(isls, constellation.ISL{A: cd.a, B: cd.b})
		taken++
		for _, cv := range cd.cov {
			res[cv.sample] *= 1 - cv.g
		}
	}
	return constellation.DedupISLs(isls)
}

// maxChordKm is the exact worst-case length of an intra-shell link between
// satellites with the given plane/slot offsets, over all time — the same
// closed form internal/check validates against (see its islBoundsFor for
// the derivation): cos ψ between the endpoints is a pure sinusoid in twice
// the argument of latitude, so its extrema, and hence the chord's, are
// analytic.
func maxChordKm(sh constellation.Shell, dPlane, dSlot int) float64 {
	r := geo.EarthRadius + sh.AltitudeKm
	inc := sh.InclinationDeg * geo.Deg
	dRaan := sh.RAANSpreadDeg / float64(sh.Planes) * float64(dPlane) * geo.Deg
	dU := (360/float64(sh.SatsPerPlane)*float64(dSlot) +
		float64(sh.WalkerF)*360/float64(sh.Size())*float64(dPlane)) * geo.Deg

	ci, si := math.Cos(inc), math.Sin(inc)
	a := math.Cos(dRaan)
	b := ci*ci*math.Cos(dRaan) + si*si
	k1 := 0.5*(a+b)*math.Cos(dU) - ci*math.Sin(dRaan)*math.Sin(dU)
	k2 := 0.5 * math.Abs(a-b)
	q := 2 - 2*(k1-k2) // smallest cos ψ ⇒ longest chord
	if q < 0 {
		q = 0
	}
	return r * math.Sqrt(q)
}

// chordClearsFloor reports whether a link of worst-case chord length d
// between satellites at the shell's orbital radius clears demandMinAltKm at
// its lowest point.
func chordClearsFloor(sh constellation.Shell, d float64) bool {
	r := geo.EarthRadius + sh.AltitudeKm
	half := d / 2
	if half >= r {
		return false
	}
	return math.Sqrt(r*r-half*half)-geo.EarthRadius >= demandMinAltKm
}

// demandCoverage is one static candidate→sample contribution: g ∈ [0,1]
// combines corridor proximity (Gaussian in chord distance) with direction
// alignment (cos² between the link and the corridor tangent, so a link
// perpendicular to the traffic flow scores near zero even if it sits right
// on the corridor).
type demandCoverage struct {
	sample int
	g      float64
}

// demandCand is a candidate cross-plane link with its coverage list and a
// lazily refreshed marginal score.
type demandCand struct {
	score float64
	a, b  int
	cov   []demandCoverage
}

// candHeap is a max-heap over candidate links ordered by the motif's
// (score, tie-break) comparison.
type candHeap struct {
	cands []*demandCand
	less  func(x, y *demandCand) bool
}

func (h *candHeap) Len() int           { return len(h.cands) }
func (h *candHeap) Less(i, j int) bool { return h.less(h.cands[i], h.cands[j]) }
func (h *candHeap) Swap(i, j int)      { h.cands[i], h.cands[j] = h.cands[j], h.cands[i] }
func (h *candHeap) Push(x interface{}) { h.cands = append(h.cands, x.(*demandCand)) }
func (h *candHeap) Pop() interface{} {
	n := len(h.cands)
	c := h.cands[n-1]
	h.cands = h.cands[:n-1]
	return c
}
