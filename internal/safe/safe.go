// Package safe provides the concurrency hardening primitives the experiment
// engine fans out with: bounded worker groups that convert a worker panic
// into a returned error (with the goroutine stack attached) and observe
// context cancellation, so a single bad snapshot cannot kill an hours-long
// run and Ctrl-C stops it within one snapshot's work.
package safe

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"sync"

	"leosim/internal/telemetry"
)

// PanicError is a recovered panic promoted to an error. Stack is the stack
// of the panicking goroutine, captured at the recovery site.
type PanicError struct {
	Value interface{}
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// AsError converts a recovered panic value into a *PanicError, capturing the
// current goroutine stack. A value that already is a *PanicError (a panic
// re-thrown across a fan-out boundary) passes through unchanged so the
// original stack survives.
func AsError(r interface{}) error {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// RecoverTo is deferred at the top of experiment entry points: it converts
// an in-flight panic (including one re-thrown by a parallel fan-out) into
// *errp, so callers see an error instead of a crashed process. The flight
// recorder is dumped to stderr at the recovery site — the events leading up
// to a panic are exactly what a post-mortem needs, and the ring is lost once
// the error is absorbed upstream. No-op when telemetry is off or empty.
func RecoverTo(errp *error) {
	if r := recover(); r != nil && *errp == nil {
		*errp = AsError(r)
		telemetry.DumpEvents(os.Stderr)
	}
}

// Group runs functions on at most `limit` concurrent goroutines, stops
// starting new work once the context is cancelled or a function fails, and
// recovers panics into errors. The zero Group is not usable; call NewGroup.
type Group struct {
	ctx context.Context
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup creates a group bound to ctx with the given concurrency limit
// (values < 1 are treated as 1). A nil ctx means context.Background().
func NewGroup(ctx context.Context, limit int) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	if limit < 1 {
		limit = 1
	}
	return &Group{ctx: ctx, sem: make(chan struct{}, limit)}
}

func (g *Group) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// failed reports whether some worker already recorded an error.
func (g *Group) failed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err != nil
}

// Go schedules fn. The goroutine starts immediately but blocks on the
// concurrency limiter; cancellation or a prior failure makes it return
// without running fn.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.setErr(AsError(r))
			}
		}()
		select {
		case g.sem <- struct{}{}:
		case <-g.ctx.Done():
			g.setErr(g.ctx.Err())
			return
		}
		defer func() { <-g.sem }()
		if err := g.ctx.Err(); err != nil {
			g.setErr(err)
			return
		}
		if g.failed() {
			return // a sibling already failed; skip the work
		}
		if err := fn(); err != nil {
			g.setErr(err)
		}
	}()
}

// Wait blocks until every scheduled function finished (or was skipped) and
// returns the first recorded error: a worker error, a *PanicError, or the
// context's error if cancellation stopped the group.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
