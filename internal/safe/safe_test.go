package safe

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsAll(t *testing.T) {
	g := NewGroup(context.Background(), 4)
	var n int64
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			atomic.AddInt64(&n, 1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("ran %d of 100", n)
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	want := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 3 {
				return want
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestGroupConvertsPanicToError(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	g.Go(func() error { panic("worker exploded") })
	err := g.Wait()
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "worker exploded") {
		t.Errorf("error lost the panic value: %v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("panic error has no stack attached")
	}
}

func TestGroupObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 1)
	started := make(chan struct{})
	g.Go(func() error {
		close(started)
		<-ctx.Done() // simulate long work interrupted by cancel
		return ctx.Err()
	})
	<-started
	// These are queued behind the limit; after cancel they must not run.
	var ran int64
	for i := 0; i < 5; i++ {
		g.Go(func() error {
			atomic.AddInt64(&ran, 1)
			return nil
		})
	}
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGroupWaitIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGroup(ctx, 1)
	for i := 0; i < 1000; i++ {
		g.Go(func() error {
			time.Sleep(50 * time.Millisecond)
			return nil
		})
	}
	start := time.Now()
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// A cancelled group must not serially execute the queued work.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Wait took %v on a cancelled group", d)
	}
}

func TestRecoverTo(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo(&err)
		panic(fmt.Errorf("inner failure"))
	}
	err := f()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v", err, err)
	}
	// A re-thrown *PanicError passes through without re-wrapping.
	g := func() (err error) {
		defer RecoverTo(&err)
		panic(pe)
	}
	if got := g(); got != error(pe) {
		t.Errorf("re-thrown PanicError was re-wrapped: %v", got)
	}
}

func TestRecoverToNoPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo(&err)
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("spurious error: %v", err)
	}
}
