package leosim

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// The facade must expose a working end-to-end pipeline: build, route,
// experiment, report — all through the public API.
func TestFacadeEndToEnd(t *testing.T) {
	sim, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Const.Size() != 1584 {
		t.Errorf("const size = %d", sim.Const.Size())
	}

	// Route a pair at the epoch under both modes.
	n := sim.NetworkAt(SnapshotAt(0), Hybrid)
	p, ok := n.ShortestPath(n.CityNode(sim.Pairs[0].Src), n.CityNode(sim.Pairs[0].Dst))
	if !ok {
		t.Fatal("no hybrid path for first pair")
	}
	if p.RTTMs() <= 0 {
		t.Errorf("rtt = %v", p.RTTMs())
	}

	res, err := RunLatency(context.Background(), sim)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteLatencyReport(&buf, res, 5)
	if buf.Len() == 0 {
		t.Errorf("empty report")
	}
}

// The fault-injection surface must work end-to-end through the facade:
// scenario constants, the sweep, and the report.
func TestFacadeResilience(t *testing.T) {
	sim, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResilience(context.Background(), sim, PlaneOutage, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != PlaneOutage || len(res.Points) != 4 {
		t.Errorf("sweep shape: scenario=%v points=%d", res.Scenario, len(res.Points))
	}
	p, ok := res.PointAt(0.25, BP)
	if !ok || p.FailedSats == 0 {
		t.Errorf("25%% plane outage failed no satellites: %+v", p)
	}
	var buf bytes.Buffer
	WriteResilienceReport(&buf, res)
	if buf.Len() == 0 {
		t.Errorf("empty resilience report")
	}
	for _, sc := range FaultScenarios() {
		if !sc.Valid() {
			t.Errorf("scenario %q invalid", sc)
		}
	}
}

func TestFacadePresets(t *testing.T) {
	if StarlinkPhase1().Size() != 1584 || KuiperPhase1().Size() != 1156 {
		t.Errorf("preset sizes wrong")
	}
	for _, s := range []Scale{TinyScale(), ReducedScale(), LargeScale(), FullScale()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if !SnapshotAt(time.Hour).Equal(Epoch.Add(time.Hour)) {
		t.Errorf("SnapshotAt arithmetic wrong")
	}
}

func TestFacadeCities(t *testing.T) {
	cities, err := Cities(100)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SamplePairs(cities, 50, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 50 {
		t.Errorf("pairs = %d", len(pairs))
	}
}

// ExampleNewSim demonstrates the quickstart flow.
func ExampleNewSim() {
	sim, err := NewSim(Starlink, TinyScale())
	if err != nil {
		panic(err)
	}
	n := sim.NetworkAt(SnapshotAt(0), Hybrid)
	_, ok := n.ShortestPath(n.CityNode(sim.Pairs[0].Src), n.CityNode(sim.Pairs[0].Dst))
	fmt.Println("satellites:", sim.Const.Size(), "routable:", ok)
	// Output: satellites: 1584 routable: true
}

func TestFacadeAttenuation(t *testing.T) {
	a, err := TotalAttenuation(AttenuationLink{
		LatDeg: 1.35, LonDeg: 103.8, ElevationDeg: 40, FreqGHz: 14.25,
	}, 0.5)
	if err != nil || a <= 0 {
		t.Fatalf("TotalAttenuation: %v %v", a, err)
	}
	ka, err := ScaleRainAttenuationFrequency(a, 14.25, 28.5)
	if err != nil || ka <= a {
		t.Fatalf("frequency scaling: %v %v", ka, err)
	}
	if p := ReceivedPowerFraction(a); p <= 0 || p >= 1 {
		t.Fatalf("power fraction: %v", p)
	}
}
