package leosim

// End-to-end integration test: exercise every experiment the CLI exposes on
// one shared reduced-ish sim, asserting the paper's qualitative directions
// all hold simultaneously. Skipped under -short.

import (
	"context"
	"io"
	"testing"
	"time"
)

func TestEndToEndAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	scale := TinyScale()
	scale.NumCities = 100
	scale.NumPairs = 80
	scale.AircraftDensity = 0.5
	sim, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("latency", func(t *testing.T) {
		res, err := RunLatency(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		med, _ := res.Headline()
		if med < -30 {
			t.Errorf("BP should vary at least roughly as much as hybrid: %v%%", med)
		}
		WriteLatencyReport(io.Discard, res, 5)
	})

	t.Run("throughput", func(t *testing.T) {
		rows, err := RunFig4(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		var bp1, hy1 float64
		for _, r := range rows {
			if r.K == 1 {
				if r.Mode == BP {
					bp1 = r.AggregateGbps
				} else {
					hy1 = r.AggregateGbps
				}
			}
		}
		if hy1 <= bp1 {
			t.Errorf("hybrid %v must beat BP %v", hy1, bp1)
		}
		WriteFig4Report(io.Discard, rows)
	})

	t.Run("fig5", func(t *testing.T) {
		pts, bp, err := RunFig5(context.Background(), sim, []float64{0.5, 3, 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 3 || bp <= 0 {
			t.Fatalf("fig5 malformed")
		}
		// Saturation: the 3×→5× step is smaller than the 0.5×→3× step.
		if pts[2].AggregateGbps-pts[1].AggregateGbps > pts[1].AggregateGbps-pts[0].AggregateGbps {
			t.Errorf("no saturation beyond 3x: %+v", pts)
		}
		WriteFig5Report(io.Discard, pts, bp)
	})

	t.Run("disconnected+utilization", func(t *testing.T) {
		d, err := RunDisconnected(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		if d.Mean <= 0 || d.Mean >= 1 {
			t.Errorf("stranded fraction %v", d.Mean)
		}
		u, err := RunUtilization(context.Background(), sim, BP, Epoch)
		if err != nil {
			t.Fatal(err)
		}
		// Idle ≥ disconnected: every disconnected satellite is also idle.
		if u.IdleFrac < d.FractionPerSnapshot[0]-0.01 {
			t.Errorf("idle %v below disconnected %v", u.IdleFrac, d.FractionPerSnapshot[0])
		}
		WriteDisconnectReport(io.Discard, d)
		WriteUtilizationReport(io.Discard, u)
	})

	t.Run("weather", func(t *testing.T) {
		res, err := RunWeather(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		if res.MedianAdvantageDB() < 0 {
			t.Errorf("ISL weather advantage negative")
		}
		cap, err := RunWeatherCapacity(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		bpMed, islMed := cap.MedianRetention()
		if islMed < bpMed {
			t.Errorf("ISL capacity retention below BP")
		}
		WriteWeatherReport(io.Discard, res, 5)
		WriteModcodReport(io.Discard, cap)
	})

	t.Run("gso", func(t *testing.T) {
		rows, err := RunGSOArc(context.Background(), sim, 40, []float64{0, 40, 80})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].FOVBlockedFrac <= rows[2].FOVBlockedFrac {
			t.Errorf("GSO FoV blocking not decreasing with latitude")
		}
		WriteGSOReport(io.Discard, rows)
	})

	t.Run("te", func(t *testing.T) {
		res, err := RunTrafficEngineering(context.Background(), sim, Hybrid, 4, Epoch)
		if err != nil {
			t.Fatal(err)
		}
		if res.TEGbps < 0.8*res.ShortestGbps {
			t.Errorf("TE collapsed: %v vs %v", res.TEGbps, res.ShortestGbps)
		}
		WriteTEReport(io.Discard, res)
	})

	t.Run("pathchurn", func(t *testing.T) {
		res, err := RunPathChurn(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanChangeFrac(BP) < res.MeanChangeFrac(Hybrid) {
			t.Errorf("BP paths should churn at least as much as hybrid")
		}
		WritePathChurnReport(io.Discard, res)
	})

	t.Run("geojson+json", func(t *testing.T) {
		if err := WriteSnapshotGeoJSON(io.Discard, sim, 0, Epoch.Add(30*time.Minute)); err != nil {
			t.Fatal(err)
		}
		rows, err := RunFig4(context.Background(), sim)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(io.Discard, "fig4", sim, rows); err != nil {
			t.Fatal(err)
		}
	})
}
